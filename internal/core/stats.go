package core

import "sync/atomic"

// Stats are the framework's self-metrics. They power the scalability
// experiments: every handler creation/removal, value computation,
// periodic update, and trigger propagation is counted so the cost of
// the metadata subsystem itself can be measured.
type Stats struct {
	// HandlersCreated counts first subscriptions that built a handler.
	HandlersCreated atomic.Int64
	// HandlersRemoved counts handlers removed after the last
	// unsubscription.
	HandlersRemoved atomic.Int64
	// SharedSubscriptions counts subscriptions that reused an
	// existing handler (Section 2.1's sharing).
	SharedSubscriptions atomic.Int64
	// ComputeCalls counts metadata value computations, across all
	// mechanisms. Sharded: it sits on the on-demand read path.
	ComputeCalls ShardedCounter
	// OnDemandComputes counts computations by on-demand handlers.
	// Sharded: it sits on the on-demand read path.
	OnDemandComputes ShardedCounter
	// PeriodicUpdates counts window-boundary updates by periodic
	// handlers.
	PeriodicUpdates atomic.Int64
	// TriggeredUpdates counts recomputations by triggered handlers.
	TriggeredUpdates atomic.Int64
	// TriggerNotifications counts dependency-update notifications
	// delivered along the inverted dependency graph.
	TriggerNotifications atomic.Int64
	// EventsFired counts developer-fired events (Section 3.2.3).
	EventsFired atomic.Int64
	// IncludeTraversals counts depth-first inclusion steps performed
	// during subscriptions.
	IncludeTraversals atomic.Int64
	// ScopeBatches counts batched tick dispatches: one per dependency
	// scope per window boundary on the batched update pipeline.
	ScopeBatches atomic.Int64
	// BatchedTicks counts periodic ticks executed inside scope
	// batches; BatchedTicks/ScopeBatches is the mean batch size.
	BatchedTicks atomic.Int64
	// PlanCacheHits counts propagations served from a cached
	// propagation plan (allocation-free walk).
	PlanCacheHits atomic.Int64
	// PlanCacheMisses counts propagations that had to (re)build their
	// plan — first use of a seed set or use after a structural change.
	PlanCacheMisses atomic.Int64
	// Timeouts counts computations abandoned at their deadline
	// (published as ErrComputeTimeout).
	Timeouts atomic.Int64
	// LateResults counts fenced-off results: a timed-out compute that
	// eventually finished but whose publication was rejected by the
	// generation fence because a newer value (or the timeout error) had
	// already been published.
	LateResults atomic.Int64
	// BreakerTrips counts circuit-breaker trips into quarantine.
	BreakerTrips atomic.Int64
	// BreakerRecoveries counts breakers closed by a successful probe.
	BreakerRecoveries atomic.Int64
	// ShedTicks counts sheddable scope batches dropped by updater
	// backpressure because a newer batch for the same scope superseded
	// them while queued.
	ShedTicks atomic.Int64
	// QueueDepth is the current number of tasks queued in the updater
	// (bounded pool updaters only; 0 for inline).
	QueueDepth atomic.Int64
	// QueueHighWater is the maximum QueueDepth observed.
	QueueHighWater atomic.Int64
	// MemoHits counts on-demand reads served from a dependency-stamped
	// memo without recomputing (WithMemoizedOnDemand + Definition.Pure).
	// Sharded: it is the memoized read hot path.
	MemoHits ShardedCounter
	// MemoMisses counts memoized on-demand reads that had to recompute:
	// first read, a dependency published a new version, a structural
	// change bumped the write epoch, or the item was quarantined.
	MemoMisses atomic.Int64
	// CoalescedReads counts on-demand reads that waited on another
	// reader's in-flight compute instead of computing themselves
	// (singleflight). The leader's compute is counted once in
	// OnDemandComputes regardless of how many readers it served.
	CoalescedReads atomic.Int64
	// DeltaFires counts delta-aggregate refreshes served by the O(1)
	// pair-apply path without re-running the full fold. Sharded: it is
	// the delta propagation hot path.
	DeltaFires ShardedCounter
	// DeltaFallbacks counts delta-aggregate refreshes that ran the
	// exact full-fold fallback (see the fallback matrix in delta.go);
	// on delta-off envs every aggregate refresh counts here. Sharded:
	// it sits on the same refresh path as DeltaFires.
	DeltaFallbacks ShardedCounter
	// DeltaRebases counts scheduled re-folds that bound float drift
	// (DeltaSpec.RebaseEvery); counted separately from DeltaFallbacks
	// so the hit rate distinguishes policy from inability. Sharded:
	// same refresh path.
	DeltaRebases ShardedCounter
	// Migrations counts live mechanism migrations performed by
	// Registry.Migrate (identity no-ops excluded).
	Migrations atomic.Int64
	// Watchers is the current number of registered watchers across all
	// hubs on this env (a gauge, like QueueDepth: Sub keeps the newer
	// snapshot's value instead of differencing).
	Watchers atomic.Int64
	// Wakeups counts sweep passes of the watch hub that processed at
	// least one dirty item — the fan-out events that actually ran.
	Wakeups atomic.Int64
	// CoalescedWakeups counts publications absorbed into an already
	// pending wakeup: the item was still marked dirty, or the sweeper
	// kick found one armed. Sharded: it sits on the publish hot path.
	CoalescedWakeups ShardedCounter
	// ShedNotifies counts watch notifications dropped or overwritten by
	// a slow consumer's full ring (coalesce-to-latest overflow). Watch
	// delivery is sheddable in the PR 4 sense: publishers never block
	// on watchers. Sharded: overflow can burst across sweeper and
	// subscriber goroutines.
	ShedNotifies ShardedCounter
	// CatchUps counts snapshot-then-delta catch-ups delivered to late
	// or lagging joiners (one Peek snapshot, then deltas only).
	CatchUps atomic.Int64
	// MuxSessions is the current number of live mux transport sessions
	// (a gauge, like Watchers: Sub keeps the newer snapshot's value).
	MuxSessions atomic.Int64
	// MuxFrames counts batched binary frames written to mux streams
	// (heartbeats excluded); MuxEvents/MuxFrames is the amortization
	// factor — events delivered per write.
	MuxFrames atomic.Int64
	// MuxEvents counts watch events carried inside mux frames.
	MuxEvents atomic.Int64
	// MuxHeartbeats counts heartbeat frames written to mux streams plus
	// keepalive comments written to legacy SSE streams.
	MuxHeartbeats atomic.Int64
	// RelayEvents counts upstream events a relay republished into its
	// local fan-out hub.
	RelayEvents atomic.Int64
	// RelayResumes counts upstream reconnect-with-resume cycles a relay
	// completed (each costs at most one Snapshot frame per behind
	// watch, not a re-subscribe storm).
	RelayResumes atomic.Int64
	// WALRecords counts structural ops appended to the durability WAL
	// (internal/persist) since process start.
	WALRecords atomic.Int64
	// WALBytes is the size of the current WAL segment (a gauge: it
	// resets to 0 when a checkpoint truncates the log; Sub keeps the
	// newer snapshot's value).
	WALBytes atomic.Int64
	// Checkpoints counts checkpoints written (manual, periodic, and the
	// post-recovery barrier checkpoint).
	Checkpoints atomic.Int64
	// CheckpointAt is the clock instant of the last checkpoint (a
	// gauge; 0 before the first). Checkpoint age is Now - CheckpointAt.
	CheckpointAt atomic.Int64
	// Recoveries counts recoveries performed by persist.Open (0 on a
	// fresh start, 1 after loading a checkpoint and/or WAL).
	Recoveries atomic.Int64
	// RestoredStale counts items re-published by RestoreStale into the
	// quarantine-backed stale-serving state during recovery.
	RestoredStale atomic.Int64
}

// noteQueueDelta adjusts the updater queue-depth gauge by delta (+1 per
// enqueue, -1 per dequeue) and maintains the high-water mark. Tracking
// the gauge with deltas instead of absolute Store calls keeps it
// consistent under concurrency: with Store, an enqueue publishing depth
// n can be overwritten by a racing dequeue publishing the older n-1,
// leaving the gauge (and a high-water read between the two) regressed.
// An Add-based gauge always converges to the true depth regardless of
// interleaving.
func (s *Stats) noteQueueDelta(delta int64) {
	depth := s.QueueDepth.Add(delta)
	for {
		hw := s.QueueHighWater.Load()
		if depth <= hw || s.QueueHighWater.CompareAndSwap(hw, depth) {
			return
		}
	}
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	HandlersCreated      int64
	HandlersRemoved      int64
	SharedSubscriptions  int64
	ComputeCalls         int64
	OnDemandComputes     int64
	PeriodicUpdates      int64
	TriggeredUpdates     int64
	TriggerNotifications int64
	EventsFired          int64
	IncludeTraversals    int64
	ScopeBatches         int64
	BatchedTicks         int64
	PlanCacheHits        int64
	PlanCacheMisses      int64
	Timeouts             int64
	LateResults          int64
	BreakerTrips         int64
	BreakerRecoveries    int64
	ShedTicks            int64
	QueueDepth           int64
	QueueHighWater       int64
	MemoHits             int64
	MemoMisses           int64
	CoalescedReads       int64
	DeltaFires           int64
	DeltaFallbacks       int64
	DeltaRebases         int64
	Migrations           int64
	Watchers             int64
	Wakeups              int64
	CoalescedWakeups     int64
	ShedNotifies         int64
	CatchUps             int64
	MuxSessions          int64
	MuxFrames            int64
	MuxEvents            int64
	MuxHeartbeats        int64
	RelayEvents          int64
	RelayResumes         int64
	WALRecords           int64
	WALBytes             int64
	Checkpoints          int64
	CheckpointAt         int64
	Recoveries           int64
	RestoredStale        int64
}

// Snapshot returns a copy of the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		HandlersCreated:      s.HandlersCreated.Load(),
		HandlersRemoved:      s.HandlersRemoved.Load(),
		SharedSubscriptions:  s.SharedSubscriptions.Load(),
		ComputeCalls:         s.ComputeCalls.Load(),
		OnDemandComputes:     s.OnDemandComputes.Load(),
		PeriodicUpdates:      s.PeriodicUpdates.Load(),
		TriggeredUpdates:     s.TriggeredUpdates.Load(),
		TriggerNotifications: s.TriggerNotifications.Load(),
		EventsFired:          s.EventsFired.Load(),
		IncludeTraversals:    s.IncludeTraversals.Load(),
		ScopeBatches:         s.ScopeBatches.Load(),
		BatchedTicks:         s.BatchedTicks.Load(),
		PlanCacheHits:        s.PlanCacheHits.Load(),
		PlanCacheMisses:      s.PlanCacheMisses.Load(),
		Timeouts:             s.Timeouts.Load(),
		LateResults:          s.LateResults.Load(),
		BreakerTrips:         s.BreakerTrips.Load(),
		BreakerRecoveries:    s.BreakerRecoveries.Load(),
		ShedTicks:            s.ShedTicks.Load(),
		QueueDepth:           s.QueueDepth.Load(),
		QueueHighWater:       s.QueueHighWater.Load(),
		MemoHits:             s.MemoHits.Load(),
		MemoMisses:           s.MemoMisses.Load(),
		CoalescedReads:       s.CoalescedReads.Load(),
		DeltaFires:           s.DeltaFires.Load(),
		DeltaFallbacks:       s.DeltaFallbacks.Load(),
		DeltaRebases:         s.DeltaRebases.Load(),
		Migrations:           s.Migrations.Load(),
		Watchers:             s.Watchers.Load(),
		Wakeups:              s.Wakeups.Load(),
		CoalescedWakeups:     s.CoalescedWakeups.Load(),
		ShedNotifies:         s.ShedNotifies.Load(),
		CatchUps:             s.CatchUps.Load(),
		MuxSessions:          s.MuxSessions.Load(),
		MuxFrames:            s.MuxFrames.Load(),
		MuxEvents:            s.MuxEvents.Load(),
		MuxHeartbeats:        s.MuxHeartbeats.Load(),
		RelayEvents:          s.RelayEvents.Load(),
		RelayResumes:         s.RelayResumes.Load(),
		WALRecords:           s.WALRecords.Load(),
		WALBytes:             s.WALBytes.Load(),
		Checkpoints:          s.Checkpoints.Load(),
		CheckpointAt:         s.CheckpointAt.Load(),
		Recoveries:           s.Recoveries.Load(),
		RestoredStale:        s.RestoredStale.Load(),
	}
}

// Sub returns the per-counter difference s - t, for measuring a window
// of activity between two snapshots.
func (s Snapshot) Sub(t Snapshot) Snapshot {
	return Snapshot{
		HandlersCreated:      s.HandlersCreated - t.HandlersCreated,
		HandlersRemoved:      s.HandlersRemoved - t.HandlersRemoved,
		SharedSubscriptions:  s.SharedSubscriptions - t.SharedSubscriptions,
		ComputeCalls:         s.ComputeCalls - t.ComputeCalls,
		OnDemandComputes:     s.OnDemandComputes - t.OnDemandComputes,
		PeriodicUpdates:      s.PeriodicUpdates - t.PeriodicUpdates,
		TriggeredUpdates:     s.TriggeredUpdates - t.TriggeredUpdates,
		TriggerNotifications: s.TriggerNotifications - t.TriggerNotifications,
		EventsFired:          s.EventsFired - t.EventsFired,
		IncludeTraversals:    s.IncludeTraversals - t.IncludeTraversals,
		ScopeBatches:         s.ScopeBatches - t.ScopeBatches,
		BatchedTicks:         s.BatchedTicks - t.BatchedTicks,
		PlanCacheHits:        s.PlanCacheHits - t.PlanCacheHits,
		PlanCacheMisses:      s.PlanCacheMisses - t.PlanCacheMisses,
		Timeouts:             s.Timeouts - t.Timeouts,
		LateResults:          s.LateResults - t.LateResults,
		BreakerTrips:         s.BreakerTrips - t.BreakerTrips,
		BreakerRecoveries:    s.BreakerRecoveries - t.BreakerRecoveries,
		ShedTicks:            s.ShedTicks - t.ShedTicks,
		// Depth and high-water are gauges, not counters; keep the
		// newer snapshot's values rather than differencing.
		QueueDepth:     s.QueueDepth,
		QueueHighWater: s.QueueHighWater,
		MemoHits:       s.MemoHits - t.MemoHits,
		MemoMisses:     s.MemoMisses - t.MemoMisses,
		CoalescedReads: s.CoalescedReads - t.CoalescedReads,
		DeltaFires:     s.DeltaFires - t.DeltaFires,
		DeltaFallbacks: s.DeltaFallbacks - t.DeltaFallbacks,
		DeltaRebases:   s.DeltaRebases - t.DeltaRebases,
		Migrations:     s.Migrations - t.Migrations,
		// Watchers is a gauge like QueueDepth: keep the newer value.
		Watchers:         s.Watchers,
		Wakeups:          s.Wakeups - t.Wakeups,
		CoalescedWakeups: s.CoalescedWakeups - t.CoalescedWakeups,
		ShedNotifies:     s.ShedNotifies - t.ShedNotifies,
		CatchUps:         s.CatchUps - t.CatchUps,
		// MuxSessions is a gauge like Watchers: keep the newer value.
		MuxSessions:   s.MuxSessions,
		MuxFrames:     s.MuxFrames - t.MuxFrames,
		MuxEvents:     s.MuxEvents - t.MuxEvents,
		MuxHeartbeats: s.MuxHeartbeats - t.MuxHeartbeats,
		RelayEvents:   s.RelayEvents - t.RelayEvents,
		RelayResumes:  s.RelayResumes - t.RelayResumes,
		WALRecords:    s.WALRecords - t.WALRecords,
		// WALBytes and CheckpointAt are gauges: keep the newer values.
		WALBytes:      s.WALBytes,
		Checkpoints:   s.Checkpoints - t.Checkpoints,
		CheckpointAt:  s.CheckpointAt,
		Recoveries:    s.Recoveries - t.Recoveries,
		RestoredStale: s.RestoredStale - t.RestoredStale,
	}
}

// MeanBatchSize returns the mean number of periodic ticks per scope
// batch in the snapshot, or 0 when no batches ran.
func (s Snapshot) MeanBatchSize() float64 {
	if s.ScopeBatches == 0 {
		return 0
	}
	return float64(s.BatchedTicks) / float64(s.ScopeBatches)
}

// PlanHitRate returns the fraction of propagations served from a
// cached plan, or 0 when no propagation ran.
func (s Snapshot) PlanHitRate() float64 {
	total := s.PlanCacheHits + s.PlanCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.PlanCacheHits) / float64(total)
}

// MemoHitRate returns the fraction of memoized on-demand reads served
// from the stamped memo without recomputing, or 0 when no memoized
// reads ran.
func (s Snapshot) MemoHitRate() float64 {
	total := s.MemoHits + s.MemoMisses
	if total == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(total)
}

// DeltaHitRate returns the fraction of delta-aggregate refreshes
// served by the O(1) pair-apply path, or 0 when no aggregate refresh
// ran. Rebases count toward the total (they are refreshes the delta
// path did not serve) but are reported separately in the snapshot.
func (s Snapshot) DeltaHitRate() float64 {
	total := s.DeltaFires + s.DeltaFallbacks + s.DeltaRebases
	if total == 0 {
		return 0
	}
	return float64(s.DeltaFires) / float64(total)
}

// UpdateWork returns the total number of maintenance operations in the
// snapshot — the cost metric of the scalability experiments.
func (s Snapshot) UpdateWork() int64 {
	return s.PeriodicUpdates + s.TriggeredUpdates + s.OnDemandComputes
}
