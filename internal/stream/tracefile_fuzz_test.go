package stream

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSchemas are the decode schemas the fuzzer exercises: typed,
// untyped, and empty arities.
var fuzzSchemas = []Schema{
	{Name: "iii", Fields: []Field{{Name: "a", Type: "int"}, {Name: "b", Type: "int"}, {Name: "c", Type: "int"}}},
	{Name: "mixed", Fields: []Field{{Name: "id", Type: "int"}, {Name: "x", Type: "float"}, {Name: "tag", Type: "string"}}},
	{Name: "s", Fields: []Field{{Name: "only", Type: "blob"}}},
	{Name: "empty"},
}

// FuzzReadTraceCSV feeds arbitrary bytes to the trace parser. The
// parser must never panic, and any trace it accepts must be valid
// (monotone times) and must round-trip: re-serializing and re-parsing
// reaches a fixed point.
func FuzzReadTraceCSV(f *testing.F) {
	f.Add([]byte("time,a,b,c\n0,1,2,3\n5,4,5,6\n"), uint8(0))
	f.Add([]byte("time,id,x,tag\n0,1,0.5,hello\n2,2,1e300,\"quoted,comma\"\n"), uint8(1))
	f.Add([]byte("time,only\n10,anything goes\n"), uint8(2))
	f.Add([]byte("time\n1\n2\n"), uint8(3))
	f.Add([]byte(""), uint8(0))
	f.Add([]byte("time,a,b,c\n-1,x,y,z\n"), uint8(0))
	f.Add([]byte("time,id,x,tag\n9223372036854775807,1,NaN,t\n"), uint8(1))
	f.Add([]byte("time,a,b,c\n5,1,2,3\n0,1,2,3\n"), uint8(0)) // out of order
	f.Fuzz(func(t *testing.T, data []byte, which uint8) {
		schema := fuzzSchemas[int(which)%len(fuzzSchemas)]
		tr, err := ReadTraceCSV(bytes.NewReader(data), schema)
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
		var out1 strings.Builder
		if err := tr.WriteCSV(&out1, schema); err != nil {
			t.Fatalf("re-serializing accepted trace: %v", err)
		}
		tr2, err := ReadTraceCSV(strings.NewReader(out1.String()), schema)
		if err != nil {
			t.Fatalf("re-parsing own output %q: %v", out1.String(), err)
		}
		var out2 strings.Builder
		if err := tr2.WriteCSV(&out2, schema); err != nil {
			t.Fatalf("second serialization: %v", err)
		}
		if out1.String() != out2.String() {
			t.Fatalf("round-trip not a fixed point:\nfirst:  %q\nsecond: %q", out1.String(), out2.String())
		}
		if len(tr2.Arrivals) != len(tr.Arrivals) {
			t.Fatalf("round-trip changed arrival count: %d -> %d", len(tr.Arrivals), len(tr2.Arrivals))
		}
	})
}
