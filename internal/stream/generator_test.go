package stream

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

func collect(g Generator, max int) []Arrival {
	var out []Arrival
	for len(out) < max {
		a, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out
}

func TestConstantRateTimes(t *testing.T) {
	g := NewConstantRate(0, 10, 5)
	as := collect(g, 100)
	if len(as) != 5 {
		t.Fatalf("got %d arrivals, want 5", len(as))
	}
	for i, a := range as {
		if a.At != clock.Time(i*10) {
			t.Fatalf("arrival %d at %d, want %d", i, a.At, i*10)
		}
	}
	if g.Rate() != 0.1 {
		t.Fatalf("Rate() = %v, want 0.1 (Figure 4's true input rate)", g.Rate())
	}
}

func TestConstantRateReset(t *testing.T) {
	g := NewConstantRate(5, 3, 4)
	first := collect(g, 10)
	g.Reset()
	second := collect(g, 10)
	if len(first) != len(second) {
		t.Fatalf("reset changed length: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].At != second[i].At {
			t.Fatal("reset changed arrival times")
		}
	}
}

func TestConstantRateUnbounded(t *testing.T) {
	g := NewConstantRate(0, 1, 0)
	as := collect(g, 1000)
	if len(as) != 1000 {
		t.Fatalf("unbounded generator stopped at %d", len(as))
	}
}

func TestConstantRateInvalidInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	NewConstantRate(0, 0, 1)
}

func TestConstantRateCustomTuple(t *testing.T) {
	g := NewConstantRate(0, 1, 3)
	g.MakeTup = func(i int) Tuple { return Tuple{i * 2} }
	as := collect(g, 3)
	if as[2].Tuple[0] != 4 {
		t.Fatalf("MakeTup ignored: %v", as[2].Tuple)
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a := collect(NewPoisson(0, 0.1, 100, 7), 100)
	b := collect(NewPoisson(0, 0.1, 100, 7), 100)
	for i := range a {
		if a[i].At != b[i].At {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := collect(NewPoisson(0, 0.1, 100, 8), 100)
	same := true
	for i := range a {
		if a[i].At != c[i].At {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	g := NewPoisson(0, 0.05, 20000, 42)
	tr := Record(g, 0)
	got := tr.MeasuredRate()
	if math.Abs(got-0.05)/0.05 > 0.10 {
		t.Fatalf("measured rate %v, want ~0.05 (±10%%)", got)
	}
}

func TestPoissonMonotonic(t *testing.T) {
	tr := Record(NewPoisson(0, 1, 1000, 3), 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBurstyShape(t *testing.T) {
	// 1 element per unit for 10 units, then 90 units silence.
	g := NewBursty(0, 1, 10, 90, 25)
	as := collect(g, 25)
	if as[0].At != 0 || as[9].At != 9 {
		t.Fatalf("first burst wrong: %v ... %v", as[0].At, as[9].At)
	}
	if as[10].At != 100 {
		t.Fatalf("second burst starts at %d, want 100", as[10].At)
	}
	if as[19].At != 109 {
		t.Fatalf("second burst ends at %d, want 109", as[19].At)
	}
	if as[20].At != 200 {
		t.Fatalf("third burst starts at %d, want 200", as[20].At)
	}
}

func TestBurstyRates(t *testing.T) {
	g := NewBursty(0, 1, 10, 90, 0)
	if g.PeakRate() != 1 {
		t.Fatalf("PeakRate = %v, want 1", g.PeakRate())
	}
	if got := g.MeanRate(); got != 0.1 {
		t.Fatalf("MeanRate = %v, want 0.1", got)
	}
}

func TestBurstyMeasuredMatchesMeanRate(t *testing.T) {
	g := NewBursty(0, 2, 20, 80, 5000)
	tr := Record(g, 0)
	got := tr.MeasuredRate()
	want := g.MeanRate()
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("measured %v, analytic mean %v", got, want)
	}
}

func TestZipfValuesSkewed(t *testing.T) {
	g := NewZipfValues(NewConstantRate(0, 1, 10000), 100, 1.5, 11)
	counts := map[int]int{}
	for {
		a, ok := g.Next()
		if !ok {
			break
		}
		counts[a.Tuple[0].(int)]++
	}
	if counts[0] <= counts[50]*2 {
		t.Fatalf("zipf not skewed: count[0]=%d count[50]=%d", counts[0], counts[50])
	}
}

func TestZipfValuesResetReproduces(t *testing.T) {
	g := NewZipfValues(NewConstantRate(0, 1, 50), 10, 2, 5)
	a := collect(g, 50)
	g.Reset()
	b := collect(g, 50)
	for i := range a {
		if a[i].Tuple[0] != b[i].Tuple[0] {
			t.Fatal("Reset did not reproduce the sequence")
		}
	}
}

func TestRecordAndReplay(t *testing.T) {
	tr := Record(NewConstantRate(0, 10, 7), 0)
	if tr.Len() != 7 {
		t.Fatalf("Len = %d, want 7", tr.Len())
	}
	first := collect(tr, 100)
	tr.Reset()
	second := collect(tr, 100)
	if len(first) != 7 || len(second) != 7 {
		t.Fatal("trace replay lost arrivals")
	}
}

func TestRecordLimit(t *testing.T) {
	tr := Record(NewConstantRate(0, 1, 0), 10)
	if tr.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tr.Len())
	}
}

func TestTraceMeasuredRateConstant(t *testing.T) {
	tr := Record(NewConstantRate(0, 10, 101), 0)
	if got := tr.MeasuredRate(); got != 0.1 {
		t.Fatalf("MeasuredRate = %v, want 0.1", got)
	}
}

func TestTraceMeasuredRateDegenerate(t *testing.T) {
	if got := (&Trace{}).MeasuredRate(); got != 0 {
		t.Fatalf("empty trace rate = %v, want 0", got)
	}
	one := &Trace{Arrivals: []Arrival{{At: 5}}}
	if got := one.MeasuredRate(); got != 0 {
		t.Fatalf("singleton trace rate = %v, want 0", got)
	}
}

func TestMergeOrders(t *testing.T) {
	a := Record(NewConstantRate(0, 10, 5), 0) // 0,10,20,30,40
	b := Record(NewConstantRate(5, 10, 5), 0) // 5,15,25,35,45
	m := Merge(a, b)
	if m.Len() != 10 {
		t.Fatalf("merged len = %d, want 10", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Arrivals[0].At != 0 || m.Arrivals[1].At != 5 {
		t.Fatalf("merge order wrong: %v %v", m.Arrivals[0].At, m.Arrivals[1].At)
	}
}

func TestMergeTieKeepsInputOrder(t *testing.T) {
	a := &Trace{Arrivals: []Arrival{{At: 1, Tuple: Tuple{"a"}}}}
	b := &Trace{Arrivals: []Arrival{{At: 1, Tuple: Tuple{"b"}}}}
	m := Merge(a, b)
	if m.Arrivals[0].Tuple[0] != "a" || m.Arrivals[1].Tuple[0] != "b" {
		t.Fatalf("tie order wrong: %v", m.Arrivals)
	}
}

func TestValidateDetectsDisorder(t *testing.T) {
	tr := &Trace{Arrivals: []Arrival{{At: 10}, {At: 5}}}
	if tr.Validate() == nil {
		t.Fatal("Validate accepted out-of-order trace")
	}
}

// Property: merging any two valid traces yields a valid trace with the
// combined length.
func TestPropertyMergeValid(t *testing.T) {
	f := func(gaps1, gaps2 []uint8) bool {
		mk := func(gaps []uint8) *Trace {
			var tr Trace
			var at clock.Time
			for _, g := range gaps {
				at += clock.Time(g)
				tr.Arrivals = append(tr.Arrivals, Arrival{At: at})
			}
			return &tr
		}
		a, b := mk(gaps1), mk(gaps2)
		m := Merge(a, b)
		return m.Validate() == nil && m.Len() == a.Len()+b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: bursty generator always yields a valid (ordered) trace and
// its measured rate sits between 0 and the peak rate.
func TestPropertyBurstyOrdered(t *testing.T) {
	f := func(onIv, onDur, offDur uint8) bool {
		iv := clock.Duration(onIv%10) + 1
		od := (clock.Duration(onDur%10) + 1) * iv
		fd := clock.Duration(offDur % 100)
		g := NewBursty(0, iv, od, fd, 200)
		tr := Record(g, 0)
		if tr.Validate() != nil {
			return false
		}
		r := tr.MeasuredRate()
		return r >= 0 && r <= g.PeakRate()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
