package stream

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/clock"
)

// Arrival is one element arrival in a stream trace.
type Arrival struct {
	// At is the arrival (and application) time.
	At clock.Time
	// Tuple is the element payload.
	Tuple Tuple
}

// Generator produces a deterministic sequence of arrivals. Generators
// model the raw data streams at the bottom of the query graph; the
// experiments configure their rate shapes (constant, Poisson, bursty)
// to match the scenarios of Figures 4 and 5.
type Generator interface {
	// Next returns the next arrival. ok is false when the stream is
	// exhausted.
	Next() (Arrival, bool)
	// Reset rewinds the generator to its initial state so the exact
	// same sequence is produced again.
	Reset()
}

// --- Constant-rate generator (Figure 4's workload) ---

// ConstantRate emits one element every Interval time units, starting at
// Start, for Count elements (Count <= 0 means unbounded).
type ConstantRate struct {
	Start    clock.Time
	Interval clock.Duration
	Count    int
	MakeTup  func(i int) Tuple

	i int
}

// NewConstantRate returns a generator emitting one single-attribute
// tuple (the sequence number) every interval units.
func NewConstantRate(start clock.Time, interval clock.Duration, count int) *ConstantRate {
	if interval <= 0 {
		panic("stream: constant-rate interval must be positive")
	}
	return &ConstantRate{Start: start, Interval: interval, Count: count}
}

// Rate returns the true element rate in elements per time unit.
func (g *ConstantRate) Rate() float64 { return 1 / float64(g.Interval) }

// Next implements Generator.
func (g *ConstantRate) Next() (Arrival, bool) {
	if g.Count > 0 && g.i >= g.Count {
		return Arrival{}, false
	}
	at := g.Start.Add(clock.Duration(g.i) * g.Interval)
	tup := Tuple{g.i}
	if g.MakeTup != nil {
		tup = g.MakeTup(g.i)
	}
	g.i++
	return Arrival{At: at, Tuple: tup}, true
}

// Reset implements Generator.
func (g *ConstantRate) Reset() { g.i = 0 }

// --- Poisson generator ---

// Poisson emits elements with exponentially distributed inter-arrival
// times of mean 1/Rate, deterministically from Seed.
type Poisson struct {
	Start   clock.Time
	Rate    float64 // elements per time unit
	Count   int
	Seed    int64
	MakeTup func(i int) Tuple

	rng *rand.Rand
	i   int
	at  clock.Time
}

// NewPoisson returns a Poisson-process generator.
func NewPoisson(start clock.Time, rate float64, count int, seed int64) *Poisson {
	if rate <= 0 {
		panic("stream: poisson rate must be positive")
	}
	g := &Poisson{Start: start, Rate: rate, Count: count, Seed: seed}
	g.Reset()
	return g
}

// Next implements Generator.
func (g *Poisson) Next() (Arrival, bool) {
	if g.Count > 0 && g.i >= g.Count {
		return Arrival{}, false
	}
	gap := g.rng.ExpFloat64() / g.Rate
	if gap < 1 {
		gap = 1
	}
	g.at = g.at.Add(clock.Duration(math.Round(gap)))
	tup := Tuple{g.i}
	if g.MakeTup != nil {
		tup = g.MakeTup(g.i)
	}
	g.i++
	return Arrival{At: g.at, Tuple: tup}, true
}

// Reset implements Generator.
func (g *Poisson) Reset() {
	g.rng = rand.New(rand.NewSource(g.Seed))
	g.i = 0
	g.at = g.Start
}

// --- Bursty on/off generator (Figure 5's workload) ---

// Bursty alternates between an "on" phase emitting at a high constant
// rate and a silent "off" phase. This is the bursty arrival process of
// Figure 5, where on-demand averaging sampled at burst peaks reports a
// wrong average rate.
type Bursty struct {
	Start       clock.Time
	OnInterval  clock.Duration // inter-arrival gap during bursts
	OnDuration  clock.Duration // length of a burst
	OffDuration clock.Duration // silence between bursts
	Count       int
	MakeTup     func(i int) Tuple

	i  int
	at clock.Time
	on clock.Duration // time spent in the current burst
}

// NewBursty returns an on/off burst generator.
func NewBursty(start clock.Time, onInterval, onDuration, offDuration clock.Duration, count int) *Bursty {
	if onInterval <= 0 || onDuration <= 0 || offDuration < 0 {
		panic("stream: invalid bursty parameters")
	}
	g := &Bursty{Start: start, OnInterval: onInterval, OnDuration: onDuration, OffDuration: offDuration, Count: count}
	g.Reset()
	return g
}

// MeanRate returns the long-run average element rate.
func (g *Bursty) MeanRate() float64 {
	perBurst := float64(g.OnDuration / g.OnInterval)
	cycle := float64(g.OnDuration + g.OffDuration)
	return perBurst / cycle
}

// PeakRate returns the rate during a burst.
func (g *Bursty) PeakRate() float64 { return 1 / float64(g.OnInterval) }

// Next implements Generator.
func (g *Bursty) Next() (Arrival, bool) {
	if g.Count > 0 && g.i >= g.Count {
		return Arrival{}, false
	}
	at := g.at
	tup := Tuple{g.i}
	if g.MakeTup != nil {
		tup = g.MakeTup(g.i)
	}
	g.i++
	g.at = g.at.Add(g.OnInterval)
	g.on += g.OnInterval
	if g.on >= g.OnDuration {
		g.at = g.at.Add(g.OffDuration)
		g.on = 0
	}
	return Arrival{At: at, Tuple: tup}, true
}

// Reset implements Generator.
func (g *Bursty) Reset() {
	g.i = 0
	g.at = g.Start
	g.on = 0
}

// --- Zipf-valued generator ---

// ZipfValues wraps another generator, replacing tuple payloads with
// integer keys drawn from a Zipf distribution. It models skewed value
// distributions for join and group-by workloads.
type ZipfValues struct {
	Base Generator
	N    int     // key domain [0, N)
	S    float64 // skew, > 1
	Seed int64

	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewZipfValues returns a generator emitting Zipf-distributed keys at
// the base generator's arrival times.
func NewZipfValues(base Generator, n int, s float64, seed int64) *ZipfValues {
	if n <= 0 || s <= 1 {
		panic("stream: zipf requires n > 0 and s > 1")
	}
	g := &ZipfValues{Base: base, N: n, S: s, Seed: seed}
	g.Reset()
	return g
}

// Next implements Generator.
func (g *ZipfValues) Next() (Arrival, bool) {
	a, ok := g.Base.Next()
	if !ok {
		return Arrival{}, false
	}
	a.Tuple = Tuple{int(g.zipf.Uint64())}
	return a, true
}

// Reset implements Generator.
func (g *ZipfValues) Reset() {
	g.Base.Reset()
	g.rng = rand.New(rand.NewSource(g.Seed))
	g.zipf = rand.NewZipf(g.rng, g.S, 1, uint64(g.N-1))
}

// --- Trace: materialized arrival sequence ---

// Trace is a materialized, replayable arrival sequence.
type Trace struct {
	Arrivals []Arrival
	pos      int
}

// Record materializes up to limit arrivals from g (all if limit <= 0
// and the generator is bounded).
func Record(g Generator, limit int) *Trace {
	var t Trace
	for limit <= 0 || len(t.Arrivals) < limit {
		a, ok := g.Next()
		if !ok {
			break
		}
		t.Arrivals = append(t.Arrivals, a)
		if limit <= 0 && len(t.Arrivals) > 10_000_000 {
			panic("stream: unbounded Record on unbounded generator")
		}
	}
	return &t
}

// Next implements Generator.
func (t *Trace) Next() (Arrival, bool) {
	if t.pos >= len(t.Arrivals) {
		return Arrival{}, false
	}
	a := t.Arrivals[t.pos]
	t.pos++
	return a, true
}

// Reset implements Generator.
func (t *Trace) Reset() { t.pos = 0 }

// Len returns the number of arrivals in the trace.
func (t *Trace) Len() int { return len(t.Arrivals) }

// MeasuredRate returns the empirical rate of the trace: count divided
// by the span from the first to one past the last arrival.
func (t *Trace) MeasuredRate() float64 {
	if len(t.Arrivals) < 2 {
		return 0
	}
	span := t.Arrivals[len(t.Arrivals)-1].At - t.Arrivals[0].At
	if span <= 0 {
		return 0
	}
	return float64(len(t.Arrivals)-1) / float64(span)
}

// Validate checks that arrivals are in nondecreasing time order.
func (t *Trace) Validate() error {
	for i := 1; i < len(t.Arrivals); i++ {
		if t.Arrivals[i].At < t.Arrivals[i-1].At {
			return fmt.Errorf("stream: trace out of order at index %d: %d < %d",
				i, t.Arrivals[i].At, t.Arrivals[i-1].At)
		}
	}
	return nil
}

// Merge combines several traces into one time-ordered trace. Arrivals
// at equal times keep their input order (earlier trace first).
func Merge(traces ...*Trace) *Trace {
	var out Trace
	idx := make([]int, len(traces))
	for {
		best := -1
		var bestAt clock.Time
		for i, tr := range traces {
			if idx[i] >= len(tr.Arrivals) {
				continue
			}
			at := tr.Arrivals[idx[i]].At
			if best == -1 || at < bestAt {
				best, bestAt = i, at
			}
		}
		if best == -1 {
			return &out
		}
		out.Arrivals = append(out.Arrivals, traces[best].Arrivals[idx[best]])
		idx[best]++
	}
}
