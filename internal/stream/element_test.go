package stream

import (
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

func TestNewElementIsPoint(t *testing.T) {
	e := NewElement(Tuple{1}, 42)
	if e.TS != 42 || e.End != 43 {
		t.Fatalf("NewElement = [%d,%d), want [42,43)", e.TS, e.End)
	}
	if e.Validity() != 1 {
		t.Fatalf("Validity = %d, want 1", e.Validity())
	}
}

func TestOverlaps(t *testing.T) {
	mk := func(ts, end clock.Time) Element { return Element{TS: ts, End: end} }
	cases := []struct {
		a, b Element
		want bool
	}{
		{mk(0, 10), mk(5, 15), true},
		{mk(5, 15), mk(0, 10), true},
		{mk(0, 10), mk(10, 20), false}, // half-open: touching intervals do not overlap
		{mk(10, 20), mk(0, 10), false},
		{mk(0, 10), mk(2, 5), true}, // containment
		{mk(0, 1), mk(0, 1), true},  // identical points
		{mk(0, 1), mk(1, 2), false},
	}
	for i, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("case %d: %v.Overlaps(%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("case %d: Overlaps not symmetric", i)
		}
	}
}

// Property: Overlaps is symmetric and an interval always overlaps
// itself when non-empty.
func TestPropertyOverlapsSymmetric(t *testing.T) {
	f := func(a1, d1, a2, d2 uint8) bool {
		e := Element{TS: clock.Time(a1), End: clock.Time(a1) + clock.Time(d1%50) + 1}
		g := Element{TS: clock.Time(a2), End: clock.Time(a2) + clock.Time(d2%50) + 1}
		return e.Overlaps(g) == g.Overlaps(e) && e.Overlaps(e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleCloneIsIndependent(t *testing.T) {
	a := Tuple{1, "x"}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestTupleConcat(t *testing.T) {
	c := Tuple{1, 2}.Concat(Tuple{3})
	if len(c) != 3 || c[0] != 1 || c[2] != 3 {
		t.Fatalf("Concat = %v", c)
	}
}

func TestTupleString(t *testing.T) {
	if got := (Tuple{1, "a"}).String(); got != "(1, a)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestSchemaFieldIndex(t *testing.T) {
	s := Schema{Name: "s", Fields: []Field{{"a", "int"}, {"b", "float"}}}
	if got := s.FieldIndex("b"); got != 1 {
		t.Fatalf("FieldIndex(b) = %d, want 1", got)
	}
	if got := s.FieldIndex("zz"); got != -1 {
		t.Fatalf("FieldIndex(zz) = %d, want -1", got)
	}
	if s.Arity() != 2 {
		t.Fatalf("Arity = %d, want 2", s.Arity())
	}
}

func TestSchemaConcat(t *testing.T) {
	a := Schema{Name: "a", Fields: []Field{{"x", "int"}}}
	b := Schema{Name: "b", Fields: []Field{{"y", "int"}, {"z", "int"}}}
	c := a.Concat(b)
	if c.Arity() != 3 {
		t.Fatalf("Concat arity = %d, want 3", c.Arity())
	}
	if c.Name != "a⋈b" {
		t.Fatalf("Concat name = %q", c.Name)
	}
}

func TestSchemaElementSizeGrowsWithArity(t *testing.T) {
	small := Schema{Fields: []Field{{"a", "int"}}}
	big := Schema{Fields: make([]Field, 10)}
	if small.ElementSize() >= big.ElementSize() {
		t.Fatal("ElementSize should grow with arity")
	}
	if small.ElementSize() <= 0 {
		t.Fatal("ElementSize must be positive")
	}
}
