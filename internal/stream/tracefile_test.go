package stream

import (
	"strings"
	"testing"
)

var traceSchema = Schema{Name: "t", Fields: []Field{
	{Name: "k", Type: "int"},
	{Name: "x", Type: "float"},
	{Name: "tag", Type: "string"},
}}

func sampleTrace() *Trace {
	return &Trace{Arrivals: []Arrival{
		{At: 0, Tuple: Tuple{1, 2.5, "a"}},
		{At: 10, Tuple: Tuple{2, -1.25, "b"}},
		{At: 10, Tuple: Tuple{3, 0.0, "c"}},
	}}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	var b strings.Builder
	tr := sampleTrace()
	if err := tr.WriteCSV(&b, traceSchema); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceCSV(strings.NewReader(b.String()), traceSchema)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip lost arrivals: %d vs %d", got.Len(), tr.Len())
	}
	for i := range tr.Arrivals {
		a, b := tr.Arrivals[i], got.Arrivals[i]
		if a.At != b.At {
			t.Fatalf("arrival %d time %d != %d", i, a.At, b.At)
		}
		for j := range a.Tuple {
			if a.Tuple[j] != b.Tuple[j] {
				t.Fatalf("arrival %d field %d: %v (%T) != %v (%T)",
					i, j, a.Tuple[j], a.Tuple[j], b.Tuple[j], b.Tuple[j])
			}
		}
	}
}

func TestTraceCSVHeader(t *testing.T) {
	var b strings.Builder
	if err := sampleTrace().WriteCSV(&b, traceSchema); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(b.String(), "\n", 2)[0]
	if first != "time,k,x,tag" {
		t.Fatalf("header = %q", first)
	}
}

func TestTraceCSVSchemaMismatchOnWrite(t *testing.T) {
	tr := &Trace{Arrivals: []Arrival{{At: 0, Tuple: Tuple{1}}}}
	var b strings.Builder
	if err := tr.WriteCSV(&b, traceSchema); err == nil {
		t.Fatal("accepted tuple/schema arity mismatch")
	}
}

func TestReadTraceCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "time,k\n",
		"bad time":   "time,k,x,tag\nzz,1,2.5,a\n",
		"bad int":    "time,k,x,tag\n0,one,2.5,a\n",
		"bad float":  "time,k,x,tag\n0,1,zz,a\n",
		"disorder":   "time,k,x,tag\n10,1,1.0,a\n0,2,1.0,b\n",
	}
	for name, in := range cases {
		if _, err := ReadTraceCSV(strings.NewReader(in), traceSchema); err == nil {
			t.Errorf("%s: accepted invalid input", name)
		}
	}
}

func TestReadTraceCSVReplaysThroughGenerator(t *testing.T) {
	var b strings.Builder
	if err := sampleTrace().WriteCSV(&b, traceSchema); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadTraceCSV(strings.NewReader(b.String()), traceSchema)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded trace is a Generator.
	var g Generator = tr
	a, ok := g.Next()
	if !ok || a.Tuple[0] != 1 {
		t.Fatalf("generator replay broken: %v %v", a, ok)
	}
}
