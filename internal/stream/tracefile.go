package stream

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/clock"
)

// WriteCSV serializes the trace as CSV: a header row "time,<field>..."
// followed by one row per arrival. Attribute values are rendered with
// their schema types in mind when read back via ReadTraceCSV.
func (t *Trace) WriteCSV(w io.Writer, schema Schema) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, schema.Arity()+1)
	header = append(header, "time")
	for _, f := range schema.Fields {
		header = append(header, f.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, a := range t.Arrivals {
		if len(a.Tuple) != schema.Arity() {
			return fmt.Errorf("stream: arrival %d has %d attributes, schema has %d",
				i, len(a.Tuple), schema.Arity())
		}
		row := make([]string, 0, schema.Arity()+1)
		row = append(row, strconv.FormatInt(int64(a.At), 10))
		for _, v := range a.Tuple {
			row = append(row, fmt.Sprint(v))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTraceCSV parses a trace written by WriteCSV. Attribute values
// are decoded according to the schema's field types: "int", "float"
// (float64), anything else stays a string.
func ReadTraceCSV(r io.Reader, schema Schema) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("stream: reading trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("stream: trace file has no header")
	}
	if len(rows[0]) != schema.Arity()+1 {
		return nil, fmt.Errorf("stream: header has %d columns, schema wants %d",
			len(rows[0]), schema.Arity()+1)
	}
	var t Trace
	for i, row := range rows[1:] {
		at, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: row %d: bad time %q: %w", i+1, row[0], err)
		}
		tuple := make(Tuple, 0, schema.Arity())
		for j, f := range schema.Fields {
			cell := row[j+1]
			switch f.Type {
			case "int":
				v, err := strconv.Atoi(cell)
				if err != nil {
					return nil, fmt.Errorf("stream: row %d field %s: %w", i+1, f.Name, err)
				}
				tuple = append(tuple, v)
			case "float":
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("stream: row %d field %s: %w", i+1, f.Name, err)
				}
				tuple = append(tuple, v)
			default:
				tuple = append(tuple, cell)
			}
		}
		t.Arrivals = append(t.Arrivals, Arrival{At: clock.Time(at), Tuple: tuple})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
