// Package stream defines the data model of the stream processing
// system — stream elements, tuples, schemas — and synthetic stream
// generators used as raw data sources.
//
// Following the time-based sliding-window model of the paper (Section
// 2.5), every stream element carries a timestamp and a validity: the
// half-open interval [TS, End) during which the element participates in
// window-based operators. Sources emit point elements (End = TS+1); the
// window operator widens End according to the window size.
package stream

import (
	"fmt"
	"strings"

	"repro/internal/clock"
)

// Value is a single attribute value inside a tuple.
type Value = any

// Tuple is an ordered list of attribute values.
type Tuple []Value

// Clone returns a shallow copy of the tuple. Attribute values are
// treated as immutable by all operators.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Concat returns a new tuple holding t's values followed by u's.
func (t Tuple) Concat(u Tuple) Tuple {
	c := make(Tuple, 0, len(t)+len(u))
	c = append(c, t...)
	c = append(c, u...)
	return c
}

// String renders the tuple for logs and test failures.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Element is one item of a data stream.
type Element struct {
	// Tuple carries the payload attributes.
	Tuple Tuple
	// TS is the application timestamp of the element.
	TS clock.Time
	// End is the exclusive end of the element's validity interval.
	// Window operators set End = TS + window size; raw source
	// elements have End = TS + 1 (a point in time).
	End clock.Time
}

// NewElement returns a point element valid exactly at ts.
func NewElement(tuple Tuple, ts clock.Time) Element {
	return Element{Tuple: tuple, TS: ts, End: ts + 1}
}

// Validity returns the length of the element's validity interval.
func (e Element) Validity() clock.Duration { return e.End.Sub(e.TS) }

// Overlaps reports whether the validity intervals of e and f intersect.
// This is the join condition on time used by sliding-window joins.
func (e Element) Overlaps(f Element) bool {
	return e.TS < f.End && f.TS < e.End
}

// String renders the element for logs and test failures.
func (e Element) String() string {
	return fmt.Sprintf("%v@[%d,%d)", e.Tuple, e.TS, e.End)
}

// Schema describes the attributes of a stream. Schema information is
// the canonical example of static metadata in the paper (Figure 2).
type Schema struct {
	// Name identifies the stream.
	Name string
	// Fields lists the attribute descriptors in tuple order.
	Fields []Field
}

// Field describes one attribute of a schema.
type Field struct {
	// Name is the attribute name.
	Name string
	// Type is a free-form type label such as "int" or "float".
	Type string
}

// Arity returns the number of attributes.
func (s Schema) Arity() int { return len(s.Fields) }

// FieldIndex returns the position of the named attribute, or -1.
func (s Schema) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Concat returns the schema of a join output: s's fields followed by
// o's, with the combined name "s⋈o".
func (s Schema) Concat(o Schema) Schema {
	fields := make([]Field, 0, len(s.Fields)+len(o.Fields))
	fields = append(fields, s.Fields...)
	fields = append(fields, o.Fields...)
	return Schema{Name: s.Name + "⋈" + o.Name, Fields: fields}
}

// ElementSize estimates the in-memory size of one element of this
// schema in bytes. The estimate is 16 bytes of header plus 16 bytes per
// attribute (interface value). It backs the memory-usage metadata.
func (s Schema) ElementSize() int64 {
	return 16 + 16*int64(len(s.Fields))
}
