package bench

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
)

// E21Row is one mode of the delta-propagation fan-in experiment.
type E21Row struct {
	// Mode is "delta" (the O(1) pair-apply channel) or "fold" (the
	// paper's full recompute per upstream publication, via
	// WithoutDeltaPropagation).
	Mode string
	// FanIn is the aggregate's dependency count.
	FanIn int
	// Fires is the number of upstream publications driven.
	Fires int
	// NsPerFire is wall time per publication, including the publisher's
	// own refresh and the aggregate's maintenance.
	NsPerFire int64
	// DeltaFires / DeltaFallbacks / DeltaRebases are the delta-channel
	// counters over the driven window.
	DeltaFires     int64
	DeltaFallbacks int64
	DeltaRebases   int64
	// DeltaHitRate is the fraction of aggregate refreshes served by the
	// O(1) path.
	DeltaHitRate float64
	// ComputesPerKiloFire is user computes per 1000 publications,
	// including the publisher's own recompute: ~2000 in fold mode
	// (publisher + full fold), ~1000 in delta mode (publisher only,
	// plus the scheduled rebases).
	ComputesPerKiloFire float64
}

// E21System builds the E21 workload: one aggregate (DeltaSum) over a
// fan-in of n dependencies — a hot triggered cell registered for event
// "tick" that alternates between two pre-boxed values, plus n-1 static
// cells — and returns the registry, the hot cell's value cursor, and
// the aggregate subscription. With the delta channel on, each tick
// costs one pair application on the aggregate; with it off, each tick
// re-folds all n dependencies.
func E21System(mode string, n int) (*core.Registry, *int, *core.Subscription, *core.Env) {
	var opts []core.EnvOption
	if mode == "fold" {
		opts = append(opts, core.WithoutDeltaPropagation())
	}
	vc := clock.NewVirtual()
	env := core.NewEnv(vc, opts...)
	r := env.NewRegistry("op")

	// Pre-boxed publications: the hot cell alternates 1.0 <-> 2.0, so
	// the timed loop measures maintenance, not interface boxing.
	boxed := []core.Value{1.0, 2.0}
	step := new(int)
	r.MustDefine(&core.Definition{
		Kind:   "hot",
		Events: []string{"tick"},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return boxed[*step&1], nil
			}), nil
		},
	})
	drefs := []core.DepRef{core.Dep(core.Self(), "hot")}
	for i := 1; i < n; i++ {
		kind := core.Kind(fmt.Sprintf("d%d", i))
		v := float64(i)
		r.MustDefine(&core.Definition{
			Kind:  kind,
			Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(v), nil },
		})
		drefs = append(drefs, core.Dep(core.Self(), kind))
	}
	r.MustDefine(&core.Definition{
		Kind:  "agg",
		Deps:  drefs,
		Delta: core.DeltaSum(),
		Build: core.NewDeltaAggregate,
	})
	sub, err := r.Subscribe("agg")
	if err != nil {
		panic(err)
	}
	return r, step, sub, env
}

// E21Want is the expected aggregate value after the last tick: the hot
// cell's current publication plus the static tail 1+2+...+n-1.
func E21Want(step, n int) float64 {
	return float64(1+step&1) + float64(n*(n-1)/2)
}

// RunE21 measures both modes of the fan-in maintenance experiment on
// the same workload.
func RunE21(n, fires int, elapsed func(fn func()) int64) []E21Row {
	var rows []E21Row
	for _, mode := range []string{"fold", "delta"} {
		rows = append(rows, RunE21Mode(mode, n, fires, elapsed))
	}
	return rows
}

// RunE21Mode runs one mode of E21: "delta" or "fold".
func RunE21Mode(mode string, n, fires int, elapsed func(fn func()) int64) E21Row {
	r, step, sub, env := E21System(mode, n)
	defer sub.Unsubscribe()

	// Warm tick: plan cache and snapshot chunks populated, so the timed
	// loop measures the steady state.
	*step = 1
	r.FireEvent("tick")

	before := env.Stats().Snapshot()
	ns := elapsed(func() {
		for i := 0; i < fires; i++ {
			*step = i
			r.FireEvent("tick")
		}
	})
	delta := env.Stats().Snapshot().Sub(before)

	if v, err := sub.Float(); err != nil || v != E21Want(fires-1, n) {
		panic(fmt.Sprintf("agg = %v, %v; want %v", v, err, E21Want(fires-1, n)))
	}
	return E21Row{
		Mode:                mode,
		FanIn:               n,
		Fires:               fires,
		NsPerFire:           ns / int64(fires),
		DeltaFires:          delta.DeltaFires,
		DeltaFallbacks:      delta.DeltaFallbacks,
		DeltaRebases:        delta.DeltaRebases,
		DeltaHitRate:        delta.DeltaHitRate(),
		ComputesPerKiloFire: 1000 * float64(delta.ComputeCalls) / float64(fires),
	}
}

// E21Table renders the delta-propagation fan-in comparison.
func E21Table(rows []E21Row) *Table {
	t := &Table{
		Title:  "E21 — incremental delta propagation: O(1) pair-apply vs full fold",
		Note:   "one DeltaSum aggregate over an n-edge fan-in; each tick republishes one edge. The delta channel patches the accumulator with the (old, new) pair in O(1); the fold ablation (WithoutDeltaPropagation) re-reads all n dependencies per tick",
		Header: []string{"mode", "fan-in", "fires", "ns/fire", "deltaFires", "fallbacks", "rebases", "hit rate", "computes/1k fires"},
	}
	for _, r := range rows {
		t.Add(r.Mode, r.FanIn, r.Fires, r.NsPerFire, r.DeltaFires, r.DeltaFallbacks, r.DeltaRebases,
			fmt.Sprintf("%.3f", r.DeltaHitRate), fmt.Sprintf("%.2f", r.ComputesPerKiloFire))
	}
	return t
}
