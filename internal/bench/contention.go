package bench

import (
	"fmt"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
)

// C1Row is one contention measurement: g goroutines hammering value
// reads and subscription churn over independent dependency scopes.
type C1Row struct {
	// Goroutines is the number of concurrent clients.
	Goroutines int
	// Workers is the periodic-updater pool size (0 = inline).
	Workers int
	// ReadOps / ReadNs measure the lock-free value read phase.
	ReadOps int64
	ReadNs  int64
	// ChurnOps / ChurnNs measure the subscribe/unsubscribe phase.
	ChurnOps int64
	ChurnNs  int64
}

// RunC1 measures structural-lock contention (the scalability target of
// the dependency-scope locking scheme). It builds `registries`
// independent registries — each its own dependency-scope component,
// carrying a periodic item and a triggered dependent — pins one
// subscription per registry, then for each goroutine count runs two
// timed phases:
//
//   - read: every goroutine performs `ops` value reads on pinned
//     subscriptions (round-robin over registries) while the virtual
//     clock advances, so periodic publishes and trigger propagation
//     run concurrently on the updater pool;
//   - churn: every goroutine performs `ops` subscribe/unsubscribe
//     cycles of the triggered item on its own registry slice.
//
// Under a single graph-level lock both phases serialize; with
// per-scope locks and atomic value snapshots they scale with cores.
// elapsed returns the wall-clock nanoseconds of running its argument
// (injected so this package stays free of wall-time dependencies).
func RunC1(goroutineCounts []int, registries, ops, workers int, elapsed func(func()) int64) []C1Row {
	var rows []C1Row
	for _, g := range goroutineCounts {
		vc := clock.NewVirtual()
		var updater core.Updater
		if workers == 0 {
			updater = core.NewInlineUpdater()
		} else {
			updater = core.NewPoolUpdater(workers)
		}
		env := core.NewEnv(vc, core.WithUpdater(updater))

		regs := make([]*core.Registry, registries)
		pinned := make([]*core.Subscription, registries)
		for i := range regs {
			r := env.NewRegistry(fmt.Sprintf("op%d", i))
			r.MustDefine(&core.Definition{
				Kind: "rate",
				Build: func(*core.BuildContext) (core.Handler, error) {
					return core.NewPeriodic(10, func(start, end clock.Time) (core.Value, error) {
						return float64(end), nil
					}), nil
				},
			})
			r.MustDefine(&core.Definition{
				Kind: "echo",
				Deps: []core.DepRef{core.Dep(core.Self(), "rate")},
				Build: func(ctx *core.BuildContext) (core.Handler, error) {
					h := ctx.Dep(0)
					return core.NewTriggered(func(clock.Time) (core.Value, error) { return h.Float() }), nil
				},
			})
			s, err := r.Subscribe("echo")
			if err != nil {
				panic(err)
			}
			regs[i], pinned[i] = r, s
		}

		row := C1Row{Goroutines: g, Workers: workers}

		// Phase 1: parallel value reads racing periodic publishes.
		row.ReadOps = int64(g) * int64(ops)
		row.ReadNs = elapsed(func() {
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						if _, err := pinned[(w+i)%registries].Value(); err != nil {
							panic(err)
						}
					}
				}(w)
			}
			vc.Advance(1000)
			wg.Wait()
			updater.WaitIdle()
		})

		// Phase 2: parallel subscription churn, one registry slice per
		// goroutine so the structural work lands on disjoint
		// dependency scopes.
		row.ChurnOps = int64(g) * int64(ops/10)
		row.ChurnNs = elapsed(func() {
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					r := regs[w%registries]
					for i := 0; i < ops/10; i++ {
						s, err := r.Subscribe("echo")
						if err != nil {
							panic(err)
						}
						s.Unsubscribe()
					}
				}(w)
			}
			wg.Wait()
		})

		for _, s := range pinned {
			s.Unsubscribe()
		}
		updater.Stop()
		rows = append(rows, row)
	}
	return rows
}

// C1Table renders the contention sweep.
func C1Table(rows []C1Row) *Table {
	t := &Table{
		Title: "C1 — structural-lock contention: parallel reads & subscription churn",
		Note: "independent registries are independent dependency-scope components: value reads are lock-free atomic\n" +
			"snapshots and structural churn takes only the owning component's lock, so ns/op should stay flat (or drop)\n" +
			"as goroutines grow; a single graph-level lock makes both columns rise with the goroutine count.",
		Header: []string{"goroutines", "workers", "read ns/op", "churn ns/op"},
	}
	for _, r := range rows {
		t.Add(r.Goroutines, r.Workers,
			float64(r.ReadNs)/float64(max64(r.ReadOps, 1)),
			float64(r.ChurnNs)/float64(max64(r.ChurnOps, 1)))
	}
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
