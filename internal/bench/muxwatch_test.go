package bench

import (
	"strings"
	"testing"
)

// TestE25MuxShape pins the experiment's structural claims on small
// sizes: the mux transport uses exactly one connection whatever the
// watch count, every watch converges on the final version on both
// transports, and batching never inflates the delivered count past
// the unbatched bound.
func TestE25MuxShape(t *testing.T) {
	rows := RunE25([]int{4, 64}, 30)
	byMode := map[string][]E25Row{}
	for _, r := range rows {
		byMode[r.Mode] = append(byMode[r.Mode], r)
	}
	if len(byMode["mux"]) != 2 || len(byMode["sse"]) != 2 {
		t.Fatalf("rows = %+v; want 2 per mode", rows)
	}
	for _, r := range byMode["mux"] {
		if r.Conns != 1 {
			t.Fatalf("mux at %d watches used %d conns, want 1", r.Watches, r.Conns)
		}
		if r.Delivered < int64(r.Watches) || r.Delivered > int64(r.Watches*r.Publishes) {
			t.Fatalf("mux delivered %d at %d watches, want within [%d, %d]",
				r.Delivered, r.Watches, r.Watches, r.Watches*r.Publishes)
		}
		if r.Frames < 1 || r.EventsPerFrame < 1 {
			t.Fatalf("mux framing at %d watches: frames=%d events/frame=%.1f",
				r.Watches, r.Frames, r.EventsPerFrame)
		}
	}
	for _, r := range byMode["sse"] {
		if r.Conns != r.Watches {
			t.Fatalf("sse at %d watches used %d conns, want %d", r.Watches, r.Conns, r.Watches)
		}
		if r.Delivered < int64(r.Watches) || r.Delivered > int64(r.Watches*r.Publishes) {
			t.Fatalf("sse delivered %d at %d watches, want within [%d, %d]",
				r.Delivered, r.Watches, r.Watches, r.Watches*r.Publishes)
		}
	}

	// The ablation cap: above it only mux rows appear.
	capped := RunE25([]int{E25SSEConnCap + 1}, 5)
	if len(capped) != 1 || capped[0].Mode != "mux" {
		t.Fatalf("above the conn cap rows = %+v; want one mux row", capped)
	}

	var b strings.Builder
	E25Table(rows).Fprint(&b)
	for _, want := range []string{"E25", "mux", "sse", "events/frame", "ns/event"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, b.String())
		}
	}
}
