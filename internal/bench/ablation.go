package bench

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
)

// A1Row is one point of the propagation-order ablation.
type A1Row struct {
	// Layers is the depth of the diamond ladder.
	Layers int
	// Mode is "topological" or "naive".
	Mode string
	// Refreshes is the number of triggered updates for one event at
	// the base.
	Refreshes int64
	// FinalCorrect reports whether the top item ended on the correct
	// value.
	FinalCorrect bool
}

// RunA1 ablates the topological trigger propagation (Section 3.3's
// update-order requirement): a ladder of diamonds — every layer holds
// two items, each depending on both items of the layer below — is
// updated once at its base. The framework's topological propagation
// refreshes every affected item exactly once (2·layers updates); the
// naive depth-first ablation refreshes once per path, exploding
// exponentially.
func RunA1(layers []int) []A1Row {
	var rows []A1Row
	for _, mode := range []string{"topological", "naive"} {
		for _, L := range layers {
			var opts []core.EnvOption
			if mode == "naive" {
				opts = append(opts, core.WithNaivePropagation())
			}
			vc := clock.NewVirtual()
			env := core.NewEnv(vc, opts...)
			r := env.NewRegistry("op")

			base := 1.0
			r.MustDefine(&core.Definition{
				Kind:   "base",
				Events: []string{"changed"},
				Build: func(*core.BuildContext) (core.Handler, error) {
					return core.NewTriggered(func(clock.Time) (core.Value, error) { return base, nil }), nil
				},
			})
			prevA, prevB := core.Kind("base"), core.Kind("base")
			for l := 1; l <= L; l++ {
				for _, side := range []string{"a", "b"} {
					kind := core.Kind(fmt.Sprintf("l%d%s", l, side))
					da, db := prevA, prevB
					r.MustDefine(&core.Definition{
						Kind: kind,
						Deps: []core.DepRef{core.Dep(core.Self(), da), core.Dep(core.Self(), db)},
						Build: func(ctx *core.BuildContext) (core.Handler, error) {
							ha, hb := ctx.Dep(0), ctx.Dep(1)
							return core.NewTriggered(func(clock.Time) (core.Value, error) {
								va, err := ha.Float()
								if err != nil {
									return nil, err
								}
								vb, err := hb.Float()
								if err != nil {
									return nil, err
								}
								return va + vb, nil
							}), nil
						},
					})
				}
				prevA = core.Kind(fmt.Sprintf("l%da", l))
				prevB = core.Kind(fmt.Sprintf("l%db", l))
			}
			top := prevA
			sub, err := r.Subscribe(top)
			if err != nil {
				panic(err)
			}
			// Layer l values are base * 2^l for both sides.
			want := func() float64 {
				v := base
				for l := 1; l <= L; l++ {
					v *= 2
				}
				return v
			}

			before := env.Stats().Snapshot()
			base = 2
			r.FireEvent("changed")
			delta := env.Stats().Snapshot().Sub(before)
			got, _ := sub.Float()
			rows = append(rows, A1Row{
				Layers:       L,
				Mode:         mode,
				Refreshes:    delta.TriggeredUpdates,
				FinalCorrect: got == want(),
			})
			sub.Unsubscribe()
		}
	}
	return rows
}

// A1Table renders the ablation.
func A1Table(rows []A1Row) *Table {
	t := &Table{
		Title:  "A1 — ablation: topological vs naive trigger propagation",
		Note:   "one base update through a diamond ladder: topological order refreshes each item once (~2·layers); naive DFS refreshes once per path (exponential)",
		Header: []string{"layers", "mode", "refreshes", "final value correct"},
	}
	for _, r := range rows {
		t.Add(r.Layers, r.Mode, r.Refreshes, r.FinalCorrect)
	}
	return t
}
