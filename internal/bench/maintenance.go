package bench

import (
	"fmt"
	"math"

	"repro/internal/clock"
	"repro/internal/core"
)

// E4Row is one point of the freshness/overhead trade-off sweep.
type E4Row struct {
	// Window is the periodic update window size.
	Window clock.Duration
	// Updates is the number of periodic updates during the run.
	Updates int64
	// MeanAbsError is the mean absolute difference between the
	// published rate and the true instantaneous rate, sampled at
	// every probe point.
	MeanAbsError float64
}

// RunE4 sweeps the periodic window size for a rate measurement over a
// square-wave workload (rate alternates between hi and lo every phase
// time units). Small windows track the changes closely but update
// often; large windows are cheap but stale — the calibration knob of
// Section 3.1.
func RunE4(windows []clock.Duration, hi, lo float64, phase clock.Duration, duration clock.Duration) []E4Row {
	var rows []E4Row
	for _, w := range windows {
		vc := clock.NewVirtual()
		env := core.NewEnv(vc)
		r := env.NewRegistry("op")
		var probe core.Counter
		w := w
		r.MustDefine(&core.Definition{
			Kind:  "inputRate",
			Probe: &probe,
			Build: func(*core.BuildContext) (core.Handler, error) {
				return core.NewPeriodic(w, func(start, end clock.Time) (core.Value, error) {
					width := end.Sub(start)
					if width == 0 {
						return 0.0, nil
					}
					return float64(probe.Take()) / float64(width), nil
				}), nil
			},
		})
		sub, err := r.Subscribe("inputRate")
		if err != nil {
			panic(err)
		}

		// Square-wave arrivals: deterministic thinning of a 1/unit
		// grid — at each tick t the true rate is hi or lo by phase.
		trueRate := func(t clock.Time) float64 {
			if (t/clock.Time(phase))%2 == 0 {
				return hi
			}
			return lo
		}
		acc := 0.0
		for t := clock.Time(1); t <= clock.Time(duration); t++ {
			t := t
			vc.Schedule(t, func(now clock.Time) {
				acc += trueRate(now)
				for acc >= 1 {
					probe.Inc()
					acc--
				}
			})
		}

		// Sample staleness each unit.
		errSum, samples := 0.0, 0
		for t := clock.Time(1); t <= clock.Time(duration); t++ {
			t := t
			vc.Schedule(t, func(now clock.Time) {
				v, _ := sub.Float()
				errSum += math.Abs(v - trueRate(now))
				samples++
			})
		}
		before := env.Stats().Snapshot()
		vc.AdvanceTo(clock.Time(duration))
		delta := env.Stats().Snapshot().Sub(before)
		rows = append(rows, E4Row{
			Window:       w,
			Updates:      delta.PeriodicUpdates,
			MeanAbsError: errSum / float64(samples),
		})
		sub.Unsubscribe()
	}
	return rows
}

// E4Table renders the sweep.
func E4Table(rows []E4Row) *Table {
	t := &Table{
		Title:  "E4 — freshness vs computational overhead (periodic window sweep)",
		Note:   "updates fall as 1/window while the staleness error grows with the window — the trade-off of Section 3.1",
		Header: []string{"window", "updates", "meanAbsError"},
	}
	for _, r := range rows {
		t.Add(int64(r.Window), r.Updates, r.MeanAbsError)
	}
	return t
}

// E5Row is one point of the triggered-vs-periodic comparison.
type E5Row struct {
	// ChangeEvery is the interval between changes of the underlying
	// item.
	ChangeEvery clock.Duration
	// Mechanism is "triggered" or "periodic".
	Mechanism string
	// Updates is the number of derived-item updates during the run.
	Updates int64
	// StaleFraction is the fraction of samples at which the derived
	// value disagreed with the underlying value.
	StaleFraction float64
}

// RunE5 compares triggered and periodic maintenance for a derived item
// whose underlying item changes every changeEvery units: the triggered
// handler updates exactly once per change (cost proportional to the
// change rate, never stale at sampling points); the periodic handler
// pays its fixed rate regardless and is stale between refreshes
// (Section 3.2.3: "this causes fewer costs than a periodic update").
func RunE5(changeIntervals []clock.Duration, periodicWindow clock.Duration, duration clock.Duration) []E5Row {
	var rows []E5Row
	for _, ci := range changeIntervals {
		for _, mech := range []string{"triggered", "periodic"} {
			vc := clock.NewVirtual()
			env := core.NewEnv(vc)
			r := env.NewRegistry("op")
			state := 0.0
			r.MustDefine(&core.Definition{
				Kind:   "base",
				Events: []string{"changed"},
				Build: func(*core.BuildContext) (core.Handler, error) {
					return core.NewTriggered(func(clock.Time) (core.Value, error) { return state, nil }), nil
				},
			})
			var def *core.Definition
			if mech == "triggered" {
				def = &core.Definition{
					Kind: "derived",
					Deps: []core.DepRef{core.Dep(core.Self(), "base")},
					Build: func(ctx *core.BuildContext) (core.Handler, error) {
						h := ctx.Dep(0)
						return core.NewTriggered(func(clock.Time) (core.Value, error) { return h.Float() }), nil
					},
				}
			} else {
				def = &core.Definition{
					Kind: "derived",
					Deps: []core.DepRef{core.Dep(core.Self(), "base")},
					Build: func(ctx *core.BuildContext) (core.Handler, error) {
						h := ctx.Dep(0)
						return core.NewPeriodic(periodicWindow, func(a, b clock.Time) (core.Value, error) {
							return h.Float()
						}), nil
					},
				}
			}
			r.MustDefine(def)
			sub, err := r.Subscribe("derived")
			if err != nil {
				panic(err)
			}

			// State changes.
			for t := clock.Time(ci); t <= clock.Time(duration); t += clock.Time(ci) {
				vc.Schedule(t, func(clock.Time) {
					state++
					r.FireEvent("changed")
				})
			}
			// Staleness samples, midway between potential changes.
			stale, samples := 0, 0
			for t := clock.Time(1); t <= clock.Time(duration); t += 7 {
				vc.Schedule(t, func(clock.Time) {
					v, _ := sub.Float()
					if v != state {
						stale++
					}
					samples++
				})
			}
			before := env.Stats().Snapshot()
			vc.AdvanceTo(clock.Time(duration))
			delta := env.Stats().Snapshot().Sub(before)
			updates := delta.TriggeredUpdates
			if mech == "periodic" {
				updates = delta.PeriodicUpdates
			} else {
				// Exclude the base item's own event refreshes: one per
				// change.
				updates -= int64(duration / ci)
			}
			rows = append(rows, E5Row{
				ChangeEvery:   ci,
				Mechanism:     mech,
				Updates:       updates,
				StaleFraction: float64(stale) / float64(samples),
			})
			sub.Unsubscribe()
		}
	}
	return rows
}

// E5Table renders the comparison.
func E5Table(rows []E5Row) *Table {
	t := &Table{
		Title:  "E5 — triggered vs periodic maintenance",
		Note:   "triggered updates scale with the change rate and are never stale; periodic updates cost a fixed rate and go stale between windows",
		Header: []string{"changeEvery", "mechanism", "updates", "staleFraction"},
	}
	for _, r := range rows {
		t.Add(int64(r.ChangeEvery), r.Mechanism, r.Updates, r.StaleFraction)
	}
	return t
}

// E9Row is one point of the worker-pool throughput experiment.
type E9Row struct {
	// Workers is the pool size (0 = inline updater).
	Workers int
	// Updates is the number of periodic updates completed.
	Updates int64
	// NsTotal is the wall-clock nanoseconds for the run.
	NsTotal int64
}

// RunE9 measures the periodic-update throughput of the worker pool
// (Section 4.3): nHandlers periodic items whose computation burns
// spinWork iterations, advanced through ticks clock windows, executed
// by pools of various sizes. The distribution over workers speeds up
// large graphs; "for small query graphs a single thread is
// sufficient".
func RunE9(workerCounts []int, nHandlers, ticks, spinWork int, elapsed func(func()) int64) []E9Row {
	var rows []E9Row
	for _, k := range workerCounts {
		vc := clock.NewVirtual()
		var updater core.Updater
		if k == 0 {
			updater = core.NewInlineUpdater()
		} else {
			updater = core.NewPoolUpdater(k)
		}
		env := core.NewEnv(vc, core.WithUpdater(updater))
		r := env.NewRegistry("op")
		for i := 0; i < nHandlers; i++ {
			r.MustDefine(&core.Definition{
				Kind: core.Kind(fmt.Sprintf("item%d", i)),
				Build: func(*core.BuildContext) (core.Handler, error) {
					return core.NewPeriodic(10, func(a, b clock.Time) (core.Value, error) {
						// The spin result is the published value, so
						// the work cannot be optimized away.
						s := 0.0
						for j := 0; j < spinWork; j++ {
							s += math.Sqrt(float64(j))
						}
						return s, nil
					}), nil
				},
			})
		}
		var subs []*core.Subscription
		for i := 0; i < nHandlers; i++ {
			s, err := r.Subscribe(core.Kind(fmt.Sprintf("item%d", i)))
			if err != nil {
				panic(err)
			}
			subs = append(subs, s)
		}
		before := env.Stats().Snapshot()
		ns := elapsed(func() {
			vc.Advance(clock.Duration(10 * ticks))
			updater.WaitIdle()
		})
		delta := env.Stats().Snapshot().Sub(before)
		rows = append(rows, E9Row{Workers: k, Updates: delta.PeriodicUpdates, NsTotal: ns})
		for _, s := range subs {
			s.Unsubscribe()
		}
		updater.Stop()
	}
	return rows
}

// E9Table renders the throughput sweep.
func E9Table(rows []E9Row) *Table {
	t := &Table{
		Title: "E9 — periodic update execution: worker pool sweep",
		Note: "periodic update tasks distribute over a small worker pool (Section 4.3); workers=0 is the inline single-thread\n" +
			"executor. Computation runs under per-handler locks only, so updates of independent items parallelize on\n" +
			"multi-core hosts; on a single-core host the sweep measures the pool's distribution overhead instead.",
		Header: []string{"workers", "updates", "ns/update"},
	}
	for _, r := range rows {
		perUpdate := int64(0)
		if r.Updates > 0 {
			perUpdate = r.NsTotal / r.Updates
		}
		t.Add(r.Workers, r.Updates, perUpdate)
	}
	return t
}
