package bench

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
)

var benchSchema = stream.Schema{Name: "ints", Fields: []stream.Field{{Name: "v", Type: "int"}}}

// chainPlan builds source -> n filters -> sink and returns the graph,
// clock, source, and the filter nodes.
func chainPlan(n int, statWindow clock.Duration) (*graph.Graph, *clock.Virtual, *ops.Source, []*ops.Filter) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	src := ops.NewSource(g, "src", benchSchema, 1, statWindow)
	prev := graph.Node(src)
	filters := make([]*ops.Filter, n)
	for i := 0; i < n; i++ {
		f := ops.NewFilter(g, fmt.Sprintf("f%d", i), benchSchema,
			func(stream.Tuple) bool { return true }, statWindow)
		g.Connect(prev, f)
		filters[i] = f
		prev = f
	}
	sink := ops.NewSink(g, "sink", benchSchema, nil, 0, 0, statWindow)
	g.Connect(prev, sink)
	return g, vc, src, filters
}

// E3Row is one point of the provision-scalability sweep.
type E3Row struct {
	// Operators is the query-graph size n.
	Operators int
	// Policy is "maintain-all" or "on-demand".
	Policy string
	// SubscribedFraction is the fraction of operators with a consumer
	// under the on-demand policy (1.0 for maintain-all).
	SubscribedFraction float64
	// Handlers is the number of metadata handlers maintained.
	Handlers int64
	// UpdateWork is the number of maintenance operations during the
	// run (periodic + triggered + on-demand computations).
	UpdateWork int64
}

// RunE3 sweeps query-graph size under two provision policies:
// "maintain-all" subscribes to every measured item of every operator
// (the compute-everything strawman of Section 1); "on-demand"
// subscribes only to the selectivity of every (1/f)-th operator. The
// workload runs for duration time units with a periodic stat window of
// 50.
func RunE3(sizes []int, f float64, duration clock.Duration) []E3Row {
	var rows []E3Row
	measured := []core.Kind{ops.KindInputRate, ops.KindOutputRate, ops.KindSelectivity, ops.KindMeasuredCPU}
	for _, n := range sizes {
		for _, policy := range []string{"maintain-all", "on-demand"} {
			g, vc, src, filters := chainPlan(n, 50)
			var subs []*core.Subscription
			frac := 1.0
			switch policy {
			case "maintain-all":
				for _, fl := range filters {
					for _, k := range measured {
						s, err := fl.Registry().Subscribe(k)
						if err != nil {
							panic(err)
						}
						subs = append(subs, s)
					}
				}
			case "on-demand":
				frac = f
				step := int(1 / f)
				for i := 0; i < n; i += step {
					s, err := filters[i].Registry().Subscribe(ops.KindSelectivity)
					if err != nil {
						panic(err)
					}
					subs = append(subs, s)
				}
			}
			e := engine.New(g, vc)
			e.Bind(src, stream.NewConstantRate(0, 1, 0))
			before := g.Env().Stats().Snapshot()
			e.RunUntil(clock.Time(duration))
			delta := g.Env().Stats().Snapshot().Sub(before)
			rows = append(rows, E3Row{
				Operators:          n,
				Policy:             policy,
				SubscribedFraction: frac,
				Handlers:           before.HandlersCreated,
				UpdateWork:         delta.UpdateWork(),
			})
			for _, s := range subs {
				s.Unsubscribe()
			}
		}
	}
	return rows
}

// E3Table renders the sweep.
func E3Table(rows []E3Row) *Table {
	t := &Table{
		Title:  "E3 — metadata provision scalability (pub-sub on demand vs maintain-all)",
		Note:   "maintain-all cost grows O(n); on-demand grows O(f*n) — tailored provision is crucial to scalability (Sections 1, 4.3)",
		Header: []string{"operators", "policy", "fraction", "handlers", "updateWork"},
	}
	for _, r := range rows {
		t.Add(r.Operators, r.Policy, r.SubscribedFraction, r.Handlers, r.UpdateWork)
	}
	return t
}

// E6Row is one point of the handler-sharing experiment.
type E6Row struct {
	// Consumers is the number of concurrent consumers k.
	Consumers int
	// Shared reports the run with handler sharing (the framework) or
	// the per-consumer-handler baseline.
	Shared bool
	// Handlers is the number of handlers created.
	Handlers int64
	// UpdateWork is the maintenance work during the run.
	UpdateWork int64
}

// RunE6 measures handler sharing (Section 2.1): k consumers subscribe
// to the same periodic item ("shared"); the baseline gives every
// consumer a private copy of the item ("unshared", modeling a system
// without subscription sharing). Maintenance cost per time unit stays
// constant with sharing and grows linearly without.
func RunE6(ks []int, duration clock.Duration) []E6Row {
	var rows []E6Row
	for _, k := range ks {
		for _, shared := range []bool{true, false} {
			vc := clock.NewVirtual()
			env := core.NewEnv(vc)
			r := env.NewRegistry("op")
			nItems := 1
			if !shared {
				nItems = k
			}
			for i := 0; i < nItems; i++ {
				kind := core.Kind(fmt.Sprintf("rate%d", i))
				r.MustDefine(&core.Definition{
					Kind: kind,
					Build: func(*core.BuildContext) (core.Handler, error) {
						return core.NewPeriodic(10, func(a, b clock.Time) (core.Value, error) {
							return float64(b), nil
						}), nil
					},
				})
			}
			var subs []*core.Subscription
			for i := 0; i < k; i++ {
				kind := core.Kind("rate0")
				if !shared {
					kind = core.Kind(fmt.Sprintf("rate%d", i))
				}
				s, err := r.Subscribe(kind)
				if err != nil {
					panic(err)
				}
				subs = append(subs, s)
			}
			before := env.Stats().Snapshot()
			vc.Advance(duration)
			delta := env.Stats().Snapshot().Sub(before)
			rows = append(rows, E6Row{
				Consumers:  k,
				Shared:     shared,
				Handlers:   before.HandlersCreated,
				UpdateWork: delta.UpdateWork(),
			})
			for _, s := range subs {
				s.Unsubscribe()
			}
		}
	}
	return rows
}

// E6Table renders the sharing comparison.
func E6Table(rows []E6Row) *Table {
	t := &Table{
		Title:  "E6 — handler sharing across consumers",
		Note:   "shared: one handler regardless of k (constant maintenance); unshared baseline: k handlers (linear maintenance)",
		Header: []string{"consumers", "mode", "handlers", "updateWork"},
	}
	for _, r := range rows {
		mode := "shared"
		if !r.Shared {
			mode = "unshared"
		}
		t.Add(r.Consumers, mode, r.Handlers, r.UpdateWork)
	}
	return t
}

// E7Row is one point of the dependency-resolution experiment.
type E7Row struct {
	// Depth is the dependency chain length.
	Depth int
	// FirstTraversals is the number of DFS inclusion steps for the
	// first subscription (creates the whole chain).
	FirstTraversals int64
	// SecondTraversals is the number for a second subscription to the
	// same item (shares the existing handlers).
	SecondTraversals int64
	// IncludedItems is the number of items provided after the first
	// subscription.
	IncludedItems int
}

// RunE7 measures automated dependency inclusion (Section 2.4) over
// chains of increasing depth: the first subscription traverses and
// includes the whole chain; a re-subscription stops immediately at the
// already-provided item.
func RunE7(depths []int) []E7Row {
	var rows []E7Row
	for _, d := range depths {
		vc := clock.NewVirtual()
		env := core.NewEnv(vc)
		r := env.NewRegistry("op")
		r.MustDefine(&core.Definition{
			Kind: "k0",
			Build: func(*core.BuildContext) (core.Handler, error) {
				return core.NewStatic(1.0), nil
			},
		})
		for i := 1; i <= d; i++ {
			dep := core.Kind(fmt.Sprintf("k%d", i-1))
			r.MustDefine(&core.Definition{
				Kind: core.Kind(fmt.Sprintf("k%d", i)),
				Deps: []core.DepRef{core.Dep(core.Self(), dep)},
				Build: func(ctx *core.BuildContext) (core.Handler, error) {
					h := ctx.Dep(0)
					return core.NewTriggered(func(clock.Time) (core.Value, error) {
						return h.Float()
					}), nil
				},
			})
		}
		top := core.Kind(fmt.Sprintf("k%d", d))
		before := env.Stats().Snapshot()
		s1, err := r.Subscribe(top)
		if err != nil {
			panic(err)
		}
		mid := env.Stats().Snapshot()
		s2, err := r.Subscribe(top)
		if err != nil {
			panic(err)
		}
		after := env.Stats().Snapshot()
		rows = append(rows, E7Row{
			Depth:            d,
			FirstTraversals:  mid.Sub(before).IncludeTraversals,
			SecondTraversals: after.Sub(mid).IncludeTraversals,
			IncludedItems:    len(r.Included()),
		})
		s1.Unsubscribe()
		s2.Unsubscribe()
	}
	return rows
}

// E7Table renders the resolution sweep.
func E7Table(rows []E7Row) *Table {
	t := &Table{
		Title:  "E7 — automated dependency inclusion (DFS)",
		Note:   "first subscription traverses the whole chain (depth+1 steps); a re-subscription stops at the provided item (0 steps)",
		Header: []string{"depth", "first subscr. steps", "re-subscr. steps", "included items"},
	}
	for _, r := range rows {
		t.Add(r.Depth, r.FirstTraversals, r.SecondTraversals, r.IncludedItems)
	}
	return t
}

// E12Row is one point of the subscription-churn experiment.
type E12Row struct {
	// Cycles is the number of subscribe/unsubscribe cycles executed.
	Cycles int
	// AutoRemoval reports whether unsubscription removed handlers.
	AutoRemoval bool
	// LiveHandlers is the number of handlers alive at the end.
	LiveHandlers int64
	// UpdateWork is the total maintenance work during the run.
	UpdateWork int64
}

// RunE12 measures the effect of automated handler removal (Section
// 2.1) under subscription churn over a pool of periodic items: with
// auto-removal the maintained set stays bounded by the concurrently
// subscribed items; the baseline never unsubscribes, so handlers and
// update work accumulate.
func RunE12(cycles int, poolSize int, holdTime clock.Duration) []E12Row {
	var rows []E12Row
	for _, auto := range []bool{true, false} {
		vc := clock.NewVirtual()
		env := core.NewEnv(vc)
		r := env.NewRegistry("op")
		for i := 0; i < poolSize; i++ {
			r.MustDefine(&core.Definition{
				Kind: core.Kind(fmt.Sprintf("item%d", i)),
				Build: func(*core.BuildContext) (core.Handler, error) {
					return core.NewPeriodic(10, func(a, b clock.Time) (core.Value, error) {
						return float64(b), nil
					}), nil
				},
			})
		}
		before := env.Stats().Snapshot()
		for c := 0; c < cycles; c++ {
			kind := core.Kind(fmt.Sprintf("item%d", c%poolSize))
			s, err := r.Subscribe(kind)
			if err != nil {
				panic(err)
			}
			vc.Advance(holdTime)
			if auto {
				s.Unsubscribe()
			}
		}
		delta := env.Stats().Snapshot().Sub(before)
		rows = append(rows, E12Row{
			Cycles:       cycles,
			AutoRemoval:  auto,
			LiveHandlers: delta.HandlersCreated - delta.HandlersRemoved,
			UpdateWork:   delta.UpdateWork(),
		})
	}
	return rows
}

// E12Table renders the churn comparison.
func E12Table(rows []E12Row) *Table {
	t := &Table{
		Title:  "E12 — subscription churn and automated handler removal",
		Note:   "with auto-removal the maintained set stays bounded and unused items cost nothing; without it, handlers and update work accumulate",
		Header: []string{"cycles", "auto-removal", "live handlers", "updateWork"},
	}
	for _, r := range rows {
		t.Add(r.Cycles, r.AutoRemoval, r.LiveHandlers, r.UpdateWork)
	}
	return t
}

// E13Row is one point of the dynamic-dependency experiment.
type E13Row struct {
	// Resolution is "static" or "dynamic".
	Resolution string
	// Traversals is the inclusion steps for subscribing to A with C
	// already provided.
	Traversals int64
	// IncludedItems is the number of provided items afterwards.
	IncludedItems int
}

// RunE13 measures dynamic dependency resolution (Section 4.4.3): item
// A is computable from B — itself the top of an expensive chain of
// chainDepth items — or from the cheap item C. With C already
// included, the dynamic resolver redirects A to C and avoids including
// the chain; static resolution pays for the whole chain.
func RunE13(chainDepth int) []E13Row {
	var rows []E13Row
	for _, dynamic := range []bool{false, true} {
		vc := clock.NewVirtual()
		env := core.NewEnv(vc)
		r := env.NewRegistry("op")
		// Chain under B.
		r.MustDefine(&core.Definition{
			Kind:  "b0",
			Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(1.0), nil },
		})
		for i := 1; i <= chainDepth; i++ {
			dep := core.Kind(fmt.Sprintf("b%d", i-1))
			r.MustDefine(&core.Definition{
				Kind: core.Kind(fmt.Sprintf("b%d", i)),
				Deps: []core.DepRef{core.Dep(core.Self(), dep)},
				Build: func(ctx *core.BuildContext) (core.Handler, error) {
					h := ctx.Dep(0)
					return core.NewTriggered(func(clock.Time) (core.Value, error) { return h.Float() }), nil
				},
			})
		}
		B := core.Kind(fmt.Sprintf("b%d", chainDepth))
		r.MustDefine(&core.Definition{
			Kind:  "C",
			Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(2.0), nil },
		})
		def := &core.Definition{
			Kind: "A",
			Deps: []core.DepRef{core.Dep(core.Self(), B)},
			Build: func(ctx *core.BuildContext) (core.Handler, error) {
				h := ctx.Dep(0)
				return core.NewTriggered(func(clock.Time) (core.Value, error) { return h.Float() }), nil
			},
		}
		if dynamic {
			def.Resolve = func(rc *core.ResolveContext) []core.DepRef {
				if rc.IsIncluded(core.Self(), "C") {
					return []core.DepRef{core.Dep(core.Self(), "C")}
				}
				return []core.DepRef{core.Dep(core.Self(), B)}
			}
		}
		r.MustDefine(def)

		sc, err := r.Subscribe("C")
		if err != nil {
			panic(err)
		}
		before := env.Stats().Snapshot()
		sa, err := r.Subscribe("A")
		if err != nil {
			panic(err)
		}
		delta := env.Stats().Snapshot().Sub(before)
		name := "static"
		if dynamic {
			name = "dynamic"
		}
		rows = append(rows, E13Row{
			Resolution:    name,
			Traversals:    delta.IncludeTraversals,
			IncludedItems: len(r.Included()),
		})
		sa.Unsubscribe()
		sc.Unsubscribe()
		_ = vc
	}
	return rows
}

// E13Table renders the comparison.
func E13Table(rows []E13Row) *Table {
	t := &Table{
		Title:  "E13 — dynamic dependency resolution (A from B or C)",
		Note:   "with C already included, the dynamic resolver avoids including B's whole chain (Section 4.4.3)",
		Header: []string{"resolution", "inclusion steps", "included items"},
	}
	for _, r := range rows {
		t.Add(r.Resolution, r.Traversals, r.IncludedItems)
	}
	return t
}
