package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/adapt"
	"repro/internal/clock"
	"repro/internal/core"
)

// E22Row is one configuration of the adaptive-maintenance phase-shift
// experiment.
type E22Row struct {
	// Mode is "ondemand" or "triggered" (static mechanism pinned for
	// the whole run) or "adaptive" (starts on-demand, controller
	// migrates live).
	Mode string
	// ReadHeavyComputes / WriteHeavyComputes are the hot item's
	// recomputes over the steady-state (second) half of each phase:
	// phase A is 100 reads per write, phase B is 100 writes per read.
	ReadHeavyComputes  int64
	WriteHeavyComputes int64
	// Migrations is the number of live migrations the controller
	// performed over the whole run (0 for static modes).
	Migrations int64
	// NsPerRound is wall time per round (one read/write batch plus
	// propagation and, in adaptive mode, the controller step),
	// averaged over both phases.
	NsPerRound int64
}

// E22System builds the phase-shift workload: a triggered source "src"
// registered for event "w" publishing the running write count, and a
// hot item "hot" = src + 1 declaring all three maintenance forms. Every
// recompute of "hot" — through whichever mechanism currently maintains
// it — increments computes, so the experiment counts real maintenance
// work without touching env-wide stats. mode pins the Build mechanism:
// "triggered" starts triggered, everything else starts on-demand.
func E22System(mode string) (*core.Registry, *core.Subscription, *atomic.Int64, *int, *core.Env) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	r := env.NewRegistry("op")

	writes := new(int)
	r.MustDefine(&core.Definition{
		Kind:   "src",
		Events: []string{"w"},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return float64(*writes), nil
			}), nil
		},
	})

	computes := new(atomic.Int64)
	compute := func(ctx *core.BuildContext) core.ComputeFunc {
		dep := ctx.Dep(0)
		return func(clock.Time) (core.Value, error) {
			computes.Add(1)
			f, err := dep.Float()
			if err != nil {
				return nil, err
			}
			return f + 1, nil
		}
	}
	r.MustDefine(&core.Definition{
		Kind: "hot",
		Deps: []core.DepRef{core.Dep(core.Self(), "src")},
		Adapt: &core.AdaptSpec{
			OnDemand:  compute,
			Triggered: compute,
			Periodic: func(ctx *core.BuildContext) core.WindowComputeFunc {
				dep := ctx.Dep(0)
				return func(_, _ clock.Time) (core.Value, error) {
					computes.Add(1)
					f, err := dep.Float()
					if err != nil {
						return nil, err
					}
					return f + 1, nil
				}
			},
			Window: 100,
		},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			if mode == "triggered" {
				return core.NewTriggered(compute(ctx)), nil
			}
			return core.NewOnDemand(compute(ctx)), nil
		},
	})
	sub, err := r.Subscribe("hot")
	if err != nil {
		panic(err)
	}
	return r, sub, computes, writes, env
}

// RunE22 runs all three configurations of the phase-shift experiment.
func RunE22(rounds int, elapsed func(fn func()) int64) []E22Row {
	var rows []E22Row
	for _, mode := range []string{"ondemand", "triggered", "adaptive"} {
		rows = append(rows, RunE22Mode(mode, rounds, elapsed))
	}
	return rows
}

// RunE22Mode runs one configuration through both phases. Each phase is
// `rounds` rounds; a round is the phase's read/write batch plus a
// 10-unit clock advance, and in adaptive mode one controller step.
// Computes are sampled over the second half of each phase, after the
// controller (if any) has converged.
func RunE22Mode(mode string, rounds int, elapsed func(fn func()) int64) E22Row {
	r, sub, computes, writes, env := E22System(mode)
	defer sub.Unsubscribe()

	var ctrl *adapt.Controller
	if mode == "adaptive" {
		ctrl = adapt.New(r, adapt.Config{
			Interval: 10, Hysteresis: 0.2, MinDwell: -1, CostHint: 1,
		})
		if err := ctrl.Track("hot", 0, 0); err != nil {
			panic(err)
		}
	}
	vc := env.Clock().(*clock.Virtual)

	round := func(reads, writesN int) {
		for i := 0; i < reads; i++ {
			if _, err := sub.Float(); err != nil {
				panic(err)
			}
		}
		for i := 0; i < writesN; i++ {
			*writes++
			r.FireEvent("w")
		}
		vc.Advance(10)
		if ctrl != nil {
			if _, err := ctrl.Step(); err != nil {
				panic(err)
			}
		}
	}
	phase := func(reads, writesN int) int64 {
		for i := 0; i < rounds/2; i++ {
			round(reads, writesN)
		}
		start := computes.Load()
		for i := rounds / 2; i < rounds; i++ {
			round(reads, writesN)
		}
		return computes.Load() - start
	}

	var readHeavy, writeHeavy int64
	ns := elapsed(func() {
		readHeavy = phase(100, 1)  // phase A: 100 reads : 1 write
		writeHeavy = phase(1, 100) // phase B: 1 read : 100 writes
	})

	// The hot value must track the source exactly through every
	// mechanism the run passed through.
	if v, err := sub.Float(); err != nil || v != float64(*writes)+1 {
		panic(fmt.Sprintf("hot = %v, %v; want %v", v, err, float64(*writes)+1))
	}
	return E22Row{
		Mode:               mode,
		ReadHeavyComputes:  readHeavy,
		WriteHeavyComputes: writeHeavy,
		Migrations:         env.Stats().Migrations.Load(),
		NsPerRound:         ns / int64(2*rounds),
	}
}

// E22Table renders the adaptive-maintenance phase-shift comparison.
func E22Table(rows []E22Row) *Table {
	t := &Table{
		Title:  "E22 — closed-loop adaptive maintenance: live migration across a workload phase shift",
		Note:   "one item, two phases: 100:1 read:write then 1:100. Static on-demand recomputes per read, static triggered per write; the adaptive controller samples access economics and live-migrates, converging to the cheaper mechanism in each phase. Computes are counted over the steady second half of each phase",
		Header: []string{"mode", "computes (read-heavy)", "computes (write-heavy)", "migrations", "ns/round"},
	}
	for _, r := range rows {
		t.Add(r.Mode, r.ReadHeavyComputes, r.WriteHeavyComputes, r.Migrations, r.NsPerRound)
	}
	return t
}
