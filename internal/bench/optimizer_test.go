package bench

import (
	"strings"
	"testing"
)

func TestE16ReorderingPaysOff(t *testing.T) {
	r := RunE16(3000)
	if r.Reorders != 1 {
		t.Fatalf("reorders = %d, want 1", r.Reorders)
	}
	if r.CPUAfter >= r.CPUBefore/3 {
		t.Fatalf("CPU %v -> %v: want at least 3x improvement", r.CPUBefore, r.CPUAfter)
	}
	if !r.ResultsMatch {
		t.Fatal("optimized plan changed the query result")
	}
	if len(r.RanksBefore) != 2 || r.RanksBefore[0] <= r.RanksBefore[1] {
		t.Fatalf("ranks = %v: slot 0 should have ranked worse", r.RanksBefore)
	}
	if !strings.Contains(r.Table().String(), "improvement") {
		t.Fatal("table missing content")
	}
}

func TestE17AdvisorFlips(t *testing.T) {
	rows := RunE17()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(rows[0].Plan, "(A ⋈ B)") {
		t.Fatalf("initial plan = %s, want A⋈B first", rows[0].Plan)
	}
	if !strings.Contains(rows[1].Plan, "(A ⋈ C)") {
		t.Fatalf("post-spike plan = %s, want A⋈C first", rows[1].Plan)
	}
	if rows[0].EstCPU >= rows[0].Alternatives[0].EstCPU {
		t.Fatal("recommended plan not cheapest")
	}
	if E17Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}

func TestE18QoSBeatsRoundRobinOnPriorityLatency(t *testing.T) {
	rows := RunE18(3000)
	var rr, qos E18Row
	for _, r := range rows {
		if r.Strategy == "qos" {
			qos = r
		} else {
			rr = r
		}
	}
	// Under QoS the important query is served nearly immediately.
	if qos.HiLatency > 5 {
		t.Fatalf("qos hi-priority latency = %v, want near-immediate", qos.HiLatency)
	}
	// Round-robin treats both queries alike: the high-priority query
	// sees a much larger latency than under QoS.
	if rr.HiLatency <= qos.HiLatency*5 {
		t.Fatalf("roundrobin hi latency %v vs qos %v: want clear separation", rr.HiLatency, qos.HiLatency)
	}
	// The QoS low-priority query pays for it.
	if qos.LoLatency <= qos.HiLatency {
		t.Fatal("qos low-priority query not delayed")
	}
	if E18Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}
