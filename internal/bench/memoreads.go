package bench

import (
	"fmt"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
)

// E20Row is one mode of the hot-item read fan-out experiment.
type E20Row struct {
	// Mode is "memoized" (WithMemoizedOnDemand) or "recompute" (the
	// paper's recompute-per-access on-demand read path).
	Mode string
	// Readers is the number of concurrent reader goroutines.
	Readers int
	// ReadsPerReader is the number of reads each goroutine performs.
	ReadsPerReader int
	// Deps is the number of static dependencies the hot item sums.
	Deps int
	// NsPerRead is wall time per read across all readers.
	NsPerRead int64
	// ComputesPerKiloRead is on-demand computes per 1000 reads: ~1000
	// for recompute-per-access, ~0 for the memoized steady state.
	ComputesPerKiloRead float64
	// MemoHitRate is the fraction of memoized reads served from the
	// stamped memo (0 in recompute mode, which never consults a memo).
	MemoHitRate float64
	// CoalescedReads counts reads that waited on another reader's
	// in-flight compute instead of computing themselves.
	CoalescedReads int64
}

// RunE20 measures the versioned read path against the recompute
// baseline on the same workload: one Pure on-demand item summing `deps`
// static dependencies, read by `readers` goroutines `readsPerReader`
// times each. With memoization the first read computes and stamps; all
// later reads are lock-free memo hits. Without it every read takes the
// handler mutex and recomputes.
func RunE20(readers, readsPerReader, deps int, elapsed func(fn func()) int64) []E20Row {
	var rows []E20Row
	for _, mode := range []string{"recompute", "memoized"} {
		rows = append(rows, RunE20Mode(mode, readers, readsPerReader, deps, elapsed))
	}
	return rows
}

// RunE20Mode runs one mode of E20: "memoized" or "recompute".
func RunE20Mode(mode string, readers, readsPerReader, deps int, elapsed func(fn func()) int64) E20Row {
	var opts []core.EnvOption
	if mode == "memoized" {
		opts = append(opts, core.WithMemoizedOnDemand())
	}
	vc := clock.NewVirtual()
	env := core.NewEnv(vc, opts...)
	r := env.NewRegistry("op")

	drefs := make([]core.DepRef, 0, deps)
	want := 0.0
	for i := 0; i < deps; i++ {
		kind := core.Kind(fmt.Sprintf("d%d", i))
		v := float64(i + 1)
		want += v
		r.MustDefine(&core.Definition{
			Kind:  kind,
			Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(v), nil },
		})
		drefs = append(drefs, core.Dep(core.Self(), kind))
	}
	r.MustDefine(&core.Definition{
		Kind: "hot",
		Deps: drefs,
		Pure: true,
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			hs := make([]*core.Handle, len(drefs))
			for i := range drefs {
				hs[i] = ctx.Dep(i)
			}
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				var sum float64
				for _, h := range hs {
					f, err := h.Float()
					if err != nil {
						return nil, err
					}
					sum += f
				}
				return sum, nil
			}), nil
		},
	})
	sub, err := r.Subscribe("hot")
	if err != nil {
		panic(err)
	}

	// Warm read: in memoized mode this publishes the stamped memo, so
	// the timed loop measures the steady-state hit path.
	if v, err := sub.Float(); err != nil || v != want {
		panic(fmt.Sprintf("hot = %v, %v; want %v", v, err, want))
	}

	before := env.Stats().Snapshot()
	ns := elapsed(func() {
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < readsPerReader; i++ {
					if v, err := sub.Float(); err != nil || v != want {
						panic(fmt.Sprintf("hot = %v, %v; want %v", v, err, want))
					}
				}
			}()
		}
		wg.Wait()
	})
	delta := env.Stats().Snapshot().Sub(before)
	sub.Unsubscribe()

	total := int64(readers) * int64(readsPerReader)
	return E20Row{
		Mode:                mode,
		Readers:             readers,
		ReadsPerReader:      readsPerReader,
		Deps:                deps,
		NsPerRead:           ns / total,
		ComputesPerKiloRead: 1000 * float64(delta.OnDemandComputes) / float64(total),
		MemoHitRate:         delta.MemoHitRate(),
		CoalescedReads:      delta.CoalescedReads,
	}
}

// E20Table renders the hot-item read fan-out comparison.
func E20Table(rows []E20Row) *Table {
	t := &Table{
		Title:  "E20 — hot-item read fan-out: memoized vs recompute-per-access",
		Note:   "one Pure on-demand item over static dependencies read concurrently; memoization serves repeat reads from a dependency-stamped snapshot with zero mutexes and zero computes, recompute-per-access serializes every read on the handler mutex",
		Header: []string{"mode", "readers", "reads/reader", "deps", "ns/read", "computes/1k reads", "memo hit rate", "coalesced"},
	}
	for _, r := range rows {
		t.Add(r.Mode, r.Readers, r.ReadsPerReader, r.Deps, r.NsPerRead,
			fmt.Sprintf("%.2f", r.ComputesPerKiloRead), fmt.Sprintf("%.3f", r.MemoHitRate), r.CoalescedReads)
	}
	return t
}
