package bench

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/stream"
)

// E1Result reproduces Figure 4: two consumers measuring the input rate
// of a constant-rate stream (one element every 10 units, true rate
// 0.1) concurrently. The naive scheme — an on-demand computation over
// a shared reset-on-read counter — lets the consumers corrupt each
// other's measurements; the shared periodic handler returns the
// correct rate to both.
type E1Result struct {
	// TrueRate is the analytic input rate (0.1).
	TrueRate float64
	// User1Naive and User2Naive are the rates the two naive consumers
	// computed at their access times (steady state after the first
	// access each).
	User1Naive []float64
	User2Naive []float64
	// User1Periodic and User2Periodic are the values both consumers
	// read from the shared periodic handler at the same access times.
	User1Periodic []float64
	User2Periodic []float64
}

// RunE1 executes the Figure 4 scenario. Arrivals occur every 10 units;
// both users access every 50 units, user 2 offset by 20 (the figure's
// interleaving). accesses is the number of accesses per user.
func RunE1(accesses int) *E1Result {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	r := env.NewRegistry("op")

	// Naive scheme: a shared counter, reset at every read, divided by
	// the time since the *reader's* previous access.
	var naive core.Counter
	naive.Activate()

	// Correct scheme: the framework's periodic input-rate handler over
	// its own probe.
	var probe core.Counter
	r.MustDefine(&core.Definition{
		Kind:  "inputRate",
		Probe: &probe,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewPeriodic(50, func(start, end clock.Time) (core.Value, error) {
				w := end.Sub(start)
				if w == 0 {
					return 0.0, nil
				}
				return float64(probe.Take()) / float64(w), nil
			}), nil
		},
	})
	sub1, err := r.Subscribe("inputRate")
	if err != nil {
		panic(err)
	}
	defer sub1.Unsubscribe()
	sub2, err := r.Subscribe("inputRate")
	if err != nil {
		panic(err)
	}
	defer sub2.Unsubscribe()

	// Element arrivals: one every 10 units.
	gen := stream.NewConstantRate(10, 10, 0)
	var scheduleArrival func()
	scheduleArrival = func() {
		a, _ := gen.Next()
		vc.Schedule(a.At, func(clock.Time) {
			naive.Inc()
			probe.Inc()
			scheduleArrival()
		})
	}
	scheduleArrival()

	res := &E1Result{TrueRate: 0.1}

	// Consumer access schedules: user 1 at 51, 101, ...; user 2 at
	// 71, 121, ... (one unit past the window boundaries, so the
	// periodic handler has published the preceding window). Both
	// naive reads share (and reset) one counter.
	last1, last2 := clock.Time(1), clock.Time(21)
	for i := 0; i < accesses; i++ {
		at1 := clock.Time(50*(i+1) + 1)
		vc.Schedule(at1, func(now clock.Time) {
			rate := float64(naive.Take()) / float64(now.Sub(last1))
			last1 = now
			res.User1Naive = append(res.User1Naive, rate)
			v, _ := sub1.Float()
			res.User1Periodic = append(res.User1Periodic, v)
		})
		at2 := clock.Time(50*(i+1) + 21)
		vc.Schedule(at2, func(now clock.Time) {
			rate := float64(naive.Take()) / float64(now.Sub(last2))
			last2 = now
			res.User2Naive = append(res.User2Naive, rate)
			v, _ := sub2.Float()
			res.User2Periodic = append(res.User2Periodic, v)
		})
	}
	vc.AdvanceTo(clock.Time(50*(accesses+1) + 20))
	return res
}

// Table renders the Figure 4 comparison.
func (r *E1Result) Table() *Table {
	t := &Table{
		Title:  "E1 / Figure 4 — problems with concurrent periodic access",
		Note:   "true input rate 0.1; naive on-demand sharing corrupts both users, the shared periodic handler is exact",
		Header: []string{"access#", "user1 naive", "user2 naive", "user1 periodic", "user2 periodic"},
	}
	for i := range r.User1Naive {
		u2n, u2p := "-", "-"
		if i < len(r.User2Naive) {
			u2n = trimFloat(r.User2Naive[i])
			u2p = trimFloat(r.User2Periodic[i])
		}
		t.Add(i+1, trimFloat(r.User1Naive[i]), u2n, trimFloat(r.User1Periodic[i]), u2p)
	}
	return t
}

// trimFloat formats a float compactly.
func trimFloat(f float64) string {
	t := &Table{}
	t.Add(f)
	return t.Rows[0][0]
}

// E2Result reproduces Figure 5: on a bursty stream, an on-demand
// average over the periodic input rate — sampled whenever consumers
// happen to look, here at burst peaks — reports the peak rate instead
// of the mean, while a triggered average synchronized with the input
// rate's updates is correct.
type E2Result struct {
	// TrueMean is the analytic long-run mean rate.
	TrueMean float64
	// PeakRate is the in-burst rate.
	PeakRate float64
	// OnDemandAvg is the average computed by the unsynchronized
	// on-demand handler sampled at burst peaks.
	OnDemandAvg float64
	// TriggeredAvg is the average maintained by the triggered handler.
	TriggeredAvg float64
}

// RunE2 executes the Figure 5 scenario: bursts of 1 element/unit for
// onDur units followed by offDur units of silence, for the given
// number of cycles. The periodic input rate updates every window
// units; the on-demand average is accessed once per burst, mid-burst.
func RunE2(onDur, offDur clock.Duration, window clock.Duration, cycles int) *E2Result {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	r := env.NewRegistry("op")

	gen := stream.NewBursty(0, 1, onDur, offDur, 0)

	var probe core.Counter
	r.MustDefine(&core.Definition{
		Kind:  "inputRate",
		Probe: &probe,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewPeriodic(window, func(start, end clock.Time) (core.Value, error) {
				w := end.Sub(start)
				if w == 0 {
					return 0.0, nil
				}
				return float64(probe.Take()) / float64(w), nil
			}), nil
		},
	})
	// Wrong: on-demand average sampling the current input rate at
	// access time (the paper's case (i): updates between accesses are
	// missed; sampling at peaks biases toward the peak rate).
	r.MustDefine(&core.Definition{
		Kind: "avgOnDemand",
		Deps: []core.DepRef{core.Dep(core.Self(), "inputRate")},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			dep := ctx.Dep(0)
			n, sum := 0.0, 0.0
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				v, err := dep.Float()
				if err != nil {
					return nil, err
				}
				n++
				sum += v
				return sum / n, nil
			}), nil
		},
	})
	// Right: triggered average refreshed on every input-rate update.
	r.MustDefine(&core.Definition{
		Kind: "avgTriggered",
		Deps: []core.DepRef{core.Dep(core.Self(), "inputRate")},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			dep := ctx.Dep(0)
			n, sum := 0.0, 0.0
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				v, err := dep.Float()
				if err != nil {
					return nil, err
				}
				n++
				sum += v
				return sum / n, nil
			}), nil
		},
	})

	od, err := r.Subscribe("avgOnDemand")
	if err != nil {
		panic(err)
	}
	defer od.Unsubscribe()
	tg, err := r.Subscribe("avgTriggered")
	if err != nil {
		panic(err)
	}
	defer tg.Unsubscribe()

	// Arrivals.
	var scheduleArrival func()
	scheduleArrival = func() {
		a, ok := gen.Next()
		if !ok {
			return
		}
		vc.Schedule(a.At, func(clock.Time) {
			probe.Inc()
			scheduleArrival()
		})
	}
	scheduleArrival()

	// Consumer accesses the on-demand average mid-burst, one window
	// into each burst (so the last published window lies fully inside
	// the burst and reports the peak rate).
	cycle := onDur + offDur
	var lastOD float64
	for c := 0; c < cycles; c++ {
		at := clock.Time(clock.Duration(c)*cycle + window + 1)
		vc.Schedule(at, func(clock.Time) {
			v, _ := od.Float()
			lastOD = v
		})
	}
	vc.AdvanceTo(clock.Time(clock.Duration(cycles) * cycle))

	tgv, _ := tg.Float()
	return &E2Result{
		TrueMean:     stream.NewBursty(0, 1, onDur, offDur, 0).MeanRate(),
		PeakRate:     1,
		OnDemandAvg:  lastOD,
		TriggeredAvg: tgv,
	}
}

// Table renders the Figure 5 comparison.
func (r *E2Result) Table() *Table {
	t := &Table{
		Title:  "E2 / Figure 5 — problems with on-demand aggregation",
		Note:   "bursty arrivals: the on-demand average sampled at peaks reports ~the peak rate; the triggered average reports the true mean",
		Header: []string{"quantity", "value"},
	}
	t.Add("true mean rate", r.TrueMean)
	t.Add("peak rate", r.PeakRate)
	t.Add("on-demand average (wrong)", r.OnDemandAvg)
	t.Add("triggered average (correct)", r.TriggeredAvg)
	return t
}
