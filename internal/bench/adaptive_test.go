package bench

import (
	"strings"
	"testing"
)

// TestE22AdaptiveConvergence pins the headline claim of the adaptive
// maintenance experiment: across the phase shift, the controller-driven
// configuration stays within 1.2x of the best static configuration's
// steady-state maintenance cost in BOTH phases, while each static
// configuration loses at least 2x on its off-phase.
func TestE22AdaptiveConvergence(t *testing.T) {
	elapsed := func(fn func()) int64 { fn(); return 1 }
	rows := RunE22(40, elapsed)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	od, trig, ad := rows[0], rows[1], rows[2]
	if od.Mode != "ondemand" || trig.Mode != "triggered" || ad.Mode != "adaptive" {
		t.Fatalf("modes = %q, %q, %q", od.Mode, trig.Mode, ad.Mode)
	}

	// Best static per phase: triggered in the read-heavy phase (one
	// compute per write), on-demand in the write-heavy phase (one
	// compute per read).
	bestA, bestB := trig.ReadHeavyComputes, od.WriteHeavyComputes
	if bestA == 0 || bestB == 0 {
		t.Fatalf("degenerate steady-state costs: bestA=%d bestB=%d", bestA, bestB)
	}
	if got := ad.ReadHeavyComputes; float64(got) > 1.2*float64(bestA) {
		t.Fatalf("adaptive read-heavy computes = %d, want <= 1.2x best static (%d)", got, bestA)
	}
	if got := ad.WriteHeavyComputes; float64(got) > 1.2*float64(bestB) {
		t.Fatalf("adaptive write-heavy computes = %d, want <= 1.2x best static (%d)", got, bestB)
	}

	// Each static configuration pays dearly on its off-phase.
	if got := od.ReadHeavyComputes; float64(got) < 2*float64(bestA) {
		t.Fatalf("on-demand read-heavy computes = %d, want >= 2x best (%d)", got, bestA)
	}
	if got := trig.WriteHeavyComputes; float64(got) < 2*float64(bestB) {
		t.Fatalf("triggered write-heavy computes = %d, want >= 2x best (%d)", got, bestB)
	}

	// The adaptive run must have actually migrated — once per phase
	// shift at minimum — and the statics never.
	if ad.Migrations < 2 {
		t.Fatalf("adaptive migrations = %d, want >= 2", ad.Migrations)
	}
	if od.Migrations != 0 || trig.Migrations != 0 {
		t.Fatalf("static migrations = %d, %d, want 0", od.Migrations, trig.Migrations)
	}

	var b strings.Builder
	E22Table(rows).Fprint(&b)
	for _, want := range []string{"E22", "adaptive", "ondemand", "triggered"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, b.String())
		}
	}
}
