package bench

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestE3OnDemandBeatsMaintainAll(t *testing.T) {
	rows := RunE3([]int{20, 80}, 0.1, 2000)
	byKey := map[string]E3Row{}
	for _, r := range rows {
		byKey[r.Policy+"/"+strconv.Itoa(r.Operators)] = r
	}
	// On-demand must be much cheaper at every size.
	for _, n := range []string{"20", "80"} {
		all := byKey["maintain-all/"+n]
		od := byKey["on-demand/"+n]
		if od.UpdateWork*5 > all.UpdateWork {
			t.Fatalf("n=%s: on-demand work %d not ≪ maintain-all %d", n, od.UpdateWork, all.UpdateWork)
		}
		if od.Handlers >= all.Handlers {
			t.Fatalf("n=%s: on-demand handlers %d not < maintain-all %d", n, od.Handlers, all.Handlers)
		}
	}
	// Maintain-all grows linearly with n (4x operators => ~4x work);
	// on-demand grows with f*n.
	all20, all80 := byKey["maintain-all/20"], byKey["maintain-all/80"]
	ratio := float64(all80.UpdateWork) / float64(all20.UpdateWork)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("maintain-all scaling 20->80 = %.2fx, want ~4x", ratio)
	}
	if E3Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}

func TestE4TradeOffShape(t *testing.T) {
	windows := []clock.Duration{10, 50, 200}
	rows := RunE4(windows, 1.0, 0.2, 500, 4000)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Updates fall as the window grows.
	if !(rows[0].Updates > rows[1].Updates && rows[1].Updates > rows[2].Updates) {
		t.Fatalf("updates not decreasing: %+v", rows)
	}
	// Update counts are duration/window exactly.
	if rows[0].Updates != 400 || rows[2].Updates != 20 {
		t.Fatalf("updates = %d/%d, want 400/20", rows[0].Updates, rows[2].Updates)
	}
	// Staleness error grows with the window.
	if !(rows[0].MeanAbsError < rows[1].MeanAbsError && rows[1].MeanAbsError < rows[2].MeanAbsError) {
		t.Fatalf("error not increasing: %+v", rows)
	}
	if E4Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}

func TestE5TriggeredTracksChangeRate(t *testing.T) {
	rows := RunE5([]clock.Duration{50, 400}, 20, 4000)
	get := func(ci clock.Duration, mech string) E5Row {
		for _, r := range rows {
			if r.ChangeEvery == ci && r.Mechanism == mech {
				return r
			}
		}
		t.Fatalf("missing row %d/%s", ci, mech)
		return E5Row{}
	}
	// Triggered updates equal the number of changes.
	if got := get(50, "triggered").Updates; got != 80 {
		t.Fatalf("triggered updates at ci=50: %d, want 80", got)
	}
	if got := get(400, "triggered").Updates; got != 10 {
		t.Fatalf("triggered updates at ci=400: %d, want 10", got)
	}
	// Periodic updates are constant in the change rate.
	if a, b := get(50, "periodic").Updates, get(400, "periodic").Updates; a != b {
		t.Fatalf("periodic updates vary with change rate: %d vs %d", a, b)
	}
	// Triggered is never stale; periodic is stale part of the time.
	if got := get(400, "triggered").StaleFraction; got != 0 {
		t.Fatalf("triggered stale fraction = %v, want 0", got)
	}
	if got := get(400, "periodic").StaleFraction; got == 0 {
		t.Fatal("periodic never stale — staleness probe broken")
	}
	// For rarely changing items, triggered does less work than
	// periodic (the Section 3.2.3 claim).
	if get(400, "triggered").Updates >= get(400, "periodic").Updates {
		t.Fatal("triggered not cheaper for rarely changing item")
	}
	if E5Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}

func TestE6SharingConstantUnsharedLinear(t *testing.T) {
	rows := RunE6([]int{1, 8, 32}, 1000)
	get := func(k int, shared bool) E6Row {
		for _, r := range rows {
			if r.Consumers == k && r.Shared == shared {
				return r
			}
		}
		t.Fatalf("missing row %d/%v", k, shared)
		return E6Row{}
	}
	// Shared: exactly one handler and constant work for any k.
	for _, k := range []int{1, 8, 32} {
		if got := get(k, true).Handlers; got != 1 {
			t.Fatalf("shared handlers at k=%d: %d, want 1", k, got)
		}
	}
	if a, b := get(1, true).UpdateWork, get(32, true).UpdateWork; a != b {
		t.Fatalf("shared update work grew with consumers: %d -> %d", a, b)
	}
	// Unshared: k handlers, k-fold work.
	if got := get(32, false).Handlers; got != 32 {
		t.Fatalf("unshared handlers at k=32: %d, want 32", got)
	}
	if get(32, false).UpdateWork != 32*get(1, false).UpdateWork {
		t.Fatalf("unshared work not linear: %d vs 32*%d",
			get(32, false).UpdateWork, get(1, false).UpdateWork)
	}
	if E6Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}

func TestE7TraversalCosts(t *testing.T) {
	rows := RunE7([]int{1, 10, 100})
	for i, d := range []int{1, 10, 100} {
		r := rows[i]
		if r.FirstTraversals != int64(d+1) {
			t.Fatalf("depth %d: first traversals = %d, want %d", d, r.FirstTraversals, d+1)
		}
		if r.SecondTraversals != 0 {
			t.Fatalf("depth %d: re-subscription traversed %d steps, want 0", d, r.SecondTraversals)
		}
		if r.IncludedItems != d+1 {
			t.Fatalf("depth %d: included %d, want %d", d, r.IncludedItems, d+1)
		}
	}
	if E7Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}

func TestE8EstimateStepsAtResize(t *testing.T) {
	res := RunE8(0.1, 100, 4000, 100)
	if len(res.Samples) < 30 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	var before, after E8Sample
	for _, s := range res.Samples {
		if s.At < res.ResizeAt {
			before = s
		}
		if s.At > res.ResizeAt+clock.Time(200) && after.At == 0 {
			after = s
		}
	}
	// The estimate halves (plus the rate terms) when windows halve.
	if !(after.EstCPU < before.EstCPU) {
		t.Fatalf("estimate did not drop after resize: %v -> %v", before.EstCPU, after.EstCPU)
	}
	if after.WindowSize != 50 {
		t.Fatalf("window = %d after resize, want 50", after.WindowSize)
	}
	// The estimate tracks the measurement within 2x in steady state
	// (both before and well after the resize).
	last := res.Samples[len(res.Samples)-1]
	for _, s := range []E8Sample{before, last} {
		if s.MeasCPU <= 0 {
			t.Fatalf("no measured CPU at t=%d", s.At)
		}
		ratio := s.EstCPU / s.MeasCPU
		if ratio < 0.5 || ratio > 2 {
			t.Fatalf("t=%d: est %v vs meas %v (ratio %.2f)", s.At, s.EstCPU, s.MeasCPU, ratio)
		}
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestE10ChainMinimizesQueueMemory(t *testing.T) {
	rows := RunE10(1200)
	byName := map[string]E10Row{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	chain, rr, fifo := byName["chain"], byName["roundrobin"], byName["fifo"]
	if chain.PeakQueueBytes >= rr.PeakQueueBytes {
		t.Fatalf("chain peak %d not below roundrobin %d", chain.PeakQueueBytes, rr.PeakQueueBytes)
	}
	if chain.PeakQueueBytes >= fifo.PeakQueueBytes {
		t.Fatalf("chain peak %d not below fifo %d", chain.PeakQueueBytes, fifo.PeakQueueBytes)
	}
	if E10Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}

func TestE11SheddingBoundsLoad(t *testing.T) {
	rows := RunE11(5, 12000)
	var with, without E11Row
	for _, r := range rows {
		if r.Shedding {
			with = r
		} else {
			without = r
		}
	}
	if without.FinalMeasuredCPU < 5*2 {
		t.Fatalf("unshedded load %v not clearly above capacity", without.FinalMeasuredCPU)
	}
	if with.FinalMeasuredCPU > 5*1.5 {
		t.Fatalf("shedded load %v not near capacity 5", with.FinalMeasuredCPU)
	}
	if with.FinalDropP <= 0 {
		t.Fatal("drop probability never raised")
	}
	if E11Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}

func TestE12AutoRemovalBoundsState(t *testing.T) {
	rows := RunE12(200, 10, 20)
	var auto, noAuto E12Row
	for _, r := range rows {
		if r.AutoRemoval {
			auto = r
		} else {
			noAuto = r
		}
	}
	if auto.LiveHandlers != 0 {
		t.Fatalf("auto-removal left %d handlers", auto.LiveHandlers)
	}
	if noAuto.LiveHandlers != 10 {
		t.Fatalf("baseline live handlers = %d, want pool size 10", noAuto.LiveHandlers)
	}
	if auto.UpdateWork >= noAuto.UpdateWork {
		t.Fatalf("auto-removal work %d not below baseline %d", auto.UpdateWork, noAuto.UpdateWork)
	}
	if E12Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}

func TestE13DynamicResolutionAvoidsChain(t *testing.T) {
	rows := RunE13(50)
	var static, dyn E13Row
	for _, r := range rows {
		if r.Resolution == "static" {
			static = r
		} else {
			dyn = r
		}
	}
	// Static resolution includes the 51-item chain plus A; dynamic
	// only A (C is already provided).
	if dyn.Traversals != 1 {
		t.Fatalf("dynamic traversals = %d, want 1", dyn.Traversals)
	}
	if static.Traversals != 52 {
		t.Fatalf("static traversals = %d, want 52", static.Traversals)
	}
	if dyn.IncludedItems >= static.IncludedItems {
		t.Fatalf("dynamic included %d not below static %d", dyn.IncludedItems, static.IncludedItems)
	}
	if E13Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}

func TestE14OverrideValues(t *testing.T) {
	r := RunE14()
	if r.BaseMemUsage != 100 {
		t.Fatalf("base memUsage = %v, want 100", r.BaseMemUsage)
	}
	if r.OverriddenMemUsage != 140 {
		t.Fatalf("overridden memUsage = %v, want 140", r.OverriddenMemUsage)
	}
	if r.HandlersOverridden != r.HandlersBase+1 {
		t.Fatalf("override created %d handlers vs base %d, want exactly one more (indexMem)",
			r.HandlersOverridden, r.HandlersBase)
	}
	if r.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestE15HashModuleCheaper(t *testing.T) {
	rows := RunE15(20, 3000)
	var list, hash E15Row
	for _, r := range rows {
		if r.Impl == "list" {
			list = r
		} else {
			hash = r
		}
	}
	if hash.MeasuredCPU >= list.MeasuredCPU {
		t.Fatalf("hash CPU %v not below list %v", hash.MeasuredCPU, list.MeasuredCPU)
	}
	if list.MemUsage <= 0 || hash.MemUsage <= 0 {
		t.Fatal("module memory metadata missing")
	}
	if list.ModuleItems < 2 || hash.ModuleItems < 2 {
		t.Fatalf("module registries missing items: %d/%d", list.ModuleItems, hash.ModuleItems)
	}
	if E15Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}

func TestE9PoolSpeedsUpLargeGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	elapsed := func(fn func()) int64 {
		start := time.Now()
		fn()
		return time.Since(start).Nanoseconds()
	}
	rows := RunE9([]int{0, 4}, 200, 20, 20000, elapsed)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Updates == 0 {
			t.Fatalf("workers=%d: no updates ran", r.Workers)
		}
	}
	if E9Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}

func TestF2TaxonomyTable(t *testing.T) {
	tab := RunF2()
	out := tab.String()
	for _, mech := range []string{"static", "on-demand", "periodic", "triggered"} {
		if !strings.Contains(out, mech) {
			t.Fatalf("taxonomy table missing %s:\n%s", mech, out)
		}
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
}

func TestInventoryDemo(t *testing.T) {
	out := RunInventory()
	if !strings.Contains(out, "filter") || !strings.Contains(out, "avgInputRate") {
		t.Fatalf("inventory demo missing content:\n%s", out)
	}
}
