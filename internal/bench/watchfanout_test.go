package bench

import (
	"strings"
	"testing"
	"time"
)

// TestE23FanoutShape pins the experiment's structural claims on small
// sizes: every publication reaches every callback subscriber in the
// baseline, the hub leaves every watcher caught up on the final
// version, and its delivered count never exceeds the callback total.
func TestE23FanoutShape(t *testing.T) {
	elapsed := func(fn func()) int64 {
		start := time.Now()
		fn()
		return int64(time.Since(start))
	}
	rows := RunE23([]int{4, 64}, 50, elapsed)
	byMode := map[string][]E23Row{}
	for _, r := range rows {
		byMode[r.Mode] = append(byMode[r.Mode], r)
	}
	for _, r := range byMode["callback"] {
		if want := int64(r.Watchers * r.Publishes); r.Delivered != want {
			t.Fatalf("callback delivered %d at %d watchers, want %d", r.Delivered, r.Watchers, want)
		}
	}
	for _, r := range byMode["hub"] {
		// Each watcher sees at least the final version once, and
		// coalescing can only reduce deliveries below the callback
		// count.
		if r.Delivered < int64(r.Watchers) || r.Delivered > int64(r.Watchers*r.Publishes) {
			t.Fatalf("hub delivered %d at %d watchers, want within [%d, %d]",
				r.Delivered, r.Watchers, r.Watchers, r.Watchers*r.Publishes)
		}
	}

	var b strings.Builder
	E23Table(rows).Fprint(&b)
	for _, want := range []string{"E23", "callback", "hub", "ns/publish"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, b.String())
		}
	}
}
