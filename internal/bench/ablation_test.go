package bench

import "testing"

func TestA1TopologicalLinearNaiveExponential(t *testing.T) {
	rows := RunA1([]int{2, 6, 10})
	get := func(layers int, mode string) A1Row {
		for _, r := range rows {
			if r.Layers == layers && r.Mode == mode {
				return r
			}
		}
		t.Fatalf("missing row %d/%s", layers, mode)
		return A1Row{}
	}
	// Topological: one refresh per affected item — the base, both
	// sides of every inner layer, and the single subscribed top item:
	// 1 + 2(L-1) + 1 = 2L.
	for _, L := range []int{2, 6, 10} {
		r := get(L, "topological")
		if r.Refreshes != int64(2*L) {
			t.Fatalf("topological refreshes at %d layers = %d, want %d", L, r.Refreshes, 2*L)
		}
		if !r.FinalCorrect {
			t.Fatalf("topological final value wrong at %d layers", L)
		}
	}
	// Naive: super-linear growth — at 10 layers it must exceed the
	// topological count by far more than the layer ratio.
	n10 := get(10, "naive").Refreshes
	t10 := get(10, "topological").Refreshes
	if n10 < 20*t10 {
		t.Fatalf("naive refreshes %d vs topological %d: expected explosion", n10, t10)
	}
	// Naive grows faster than linearly between 6 and 10 layers.
	n6 := get(6, "naive").Refreshes
	if n10 < 4*n6 {
		t.Fatalf("naive growth 6->10 layers: %d -> %d, want super-linear", n6, n10)
	}
	if A1Table(rows).String() == "" {
		t.Fatal("empty table")
	}
}
