package bench

import (
	"strings"
	"testing"
	"time"
)

// TestE24RecoveryShape pins the experiment's structural claims at a
// small size: cold start computes every item, warm start computes
// nothing and serves every item from the checkpoint.
func TestE24RecoveryShape(t *testing.T) {
	elapsed := func(fn func()) int64 {
		start := time.Now()
		fn()
		return int64(time.Since(start))
	}
	rows, err := RunE24(t.TempDir(), 50, elapsed)
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]E24Row{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	cold, warm := byMode["cold"], byMode["warm"]
	if cold.Items != 50 || warm.Items != 50 {
		t.Fatalf("rows = %+v, want both modes at 50 items", rows)
	}
	if cold.Computes < 50 {
		t.Fatalf("cold computed %d times, want >= one per item", cold.Computes)
	}
	if warm.Computes != 0 {
		t.Fatalf("warm computed %d times, want 0 (served from checkpoint)", warm.Computes)
	}
	if warm.Restored != 50 {
		t.Fatalf("warm restored %d items, want 50", warm.Restored)
	}

	var b strings.Builder
	E24Table(rows).Fprint(&b)
	for _, want := range []string{"E24", "cold", "warm", "ns/item"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, b.String())
		}
	}
}
