package bench

import (
	"strings"
	"testing"
)

func TestE19BatchedVsPerHandler(t *testing.T) {
	elapsed := func(fn func()) int64 { fn(); return 1 }
	rows := RunE19(40, 2, 5, elapsed)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	perHandler, batched := rows[0], rows[1]
	if perHandler.Mode != "per-handler" || batched.Mode != "batched" {
		t.Fatalf("modes = %q, %q", perHandler.Mode, batched.Mode)
	}
	// Batched: one Submit and one coalesced propagation per scope per
	// boundary; per-handler: one of each per handler.
	if batched.SubmitsPerBoundary != 2 || batched.RefreshesPerBoundary != 2 {
		t.Fatalf("batched submits/refreshes per boundary = %v/%v, want 2/2",
			batched.SubmitsPerBoundary, batched.RefreshesPerBoundary)
	}
	if perHandler.SubmitsPerBoundary != 40 || perHandler.RefreshesPerBoundary != 40 {
		t.Fatalf("per-handler submits/refreshes per boundary = %v/%v, want 40/40",
			perHandler.SubmitsPerBoundary, perHandler.RefreshesPerBoundary)
	}
	if perHandler.SubmitsPerBoundary < 5*batched.SubmitsPerBoundary {
		t.Fatalf("batching saves only %.1fx submits, want >= 5x",
			perHandler.SubmitsPerBoundary/batched.SubmitsPerBoundary)
	}
	if batched.MeanBatchSize != 20 {
		t.Fatalf("MeanBatchSize = %v, want 20 (40 handlers over 2 scopes)", batched.MeanBatchSize)
	}
	if batched.PlanHitRate != 1 {
		t.Fatalf("PlanHitRate = %v, want 1 after warm-up", batched.PlanHitRate)
	}

	var b strings.Builder
	E19Table(rows).Fprint(&b)
	if !strings.Contains(b.String(), "per-handler") || !strings.Contains(b.String(), "batched") {
		t.Fatalf("table missing modes:\n%s", b.String())
	}
}
