package bench

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/monitor"
	"repro/internal/ops"
	"repro/internal/resource"
	"repro/internal/sched"
	"repro/internal/stream"
)

// E8Sample is one time point of the cost-model tracking experiment.
type E8Sample struct {
	// At is the sampling time.
	At clock.Time
	// EstCPU is the cost model's estimated CPU usage.
	EstCPU float64
	// MeasCPU is the measured CPU usage.
	MeasCPU float64
	// WindowSize is the current size of the first window.
	WindowSize clock.Duration
}

// E8Result is the outcome of the Figure 3 / Section 3.3 scenario.
type E8Result struct {
	// Samples is the recorded trajectory.
	Samples []E8Sample
	// ResizeAt is the time the resource manager halved the windows.
	ResizeAt clock.Time
}

// RunE8 runs the full Figure 3 cost-model scenario: a sliding-window
// join over two constant-rate streams, with the estimated and measured
// CPU usage recorded every sampleEvery units. Halfway through the run
// the window sizes are halved (the Section 3.3 window adjustment); the
// event-triggered re-estimation must step immediately, and the
// measured value follows as old state expires.
func RunE8(rate float64, window clock.Duration, duration clock.Duration, sampleEvery clock.Duration) *E8Result {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	statWindow := sampleEvery
	src1 := ops.NewSource(g, "s1", benchSchema, rate, statWindow)
	src2 := ops.NewSource(g, "s2", benchSchema, rate, statWindow)
	w1 := ops.NewTimeWindow(g, "w1", benchSchema, window, statWindow)
	w2 := ops.NewTimeWindow(g, "w2", benchSchema, window, statWindow)
	join := ops.NewJoin(g, "join", benchSchema, benchSchema,
		func(l, r stream.Tuple) bool { return true }, statWindow)
	sink := ops.NewSink(g, "sink", join.Schema(), nil, 0, 0, statWindow)
	g.Connect(src1, w1)
	g.Connect(src2, w2)
	g.Connect(w1, join)
	g.Connect(w2, join)
	g.Connect(join, sink)
	costmodel.Install(g)

	est, err := join.Registry().Subscribe(costmodel.KindEstCPU)
	if err != nil {
		panic(err)
	}
	defer est.Unsubscribe()
	meas, err := join.Registry().Subscribe(ops.KindMeasuredCPU)
	if err != nil {
		panic(err)
	}
	defer meas.Unsubscribe()

	e := engine.New(g, vc)
	interval := clock.Duration(1 / rate)
	e.Bind(src1, stream.NewConstantRate(0, interval, 0))
	e.Bind(src2, stream.NewConstantRate(clock.Time(interval/2), interval, 0))

	res := &E8Result{ResizeAt: clock.Time(duration / 2)}
	for t := sampleEvery; t <= duration; t += sampleEvery {
		vc.Schedule(clock.Time(t)+1, func(now clock.Time) {
			ev, _ := est.Float()
			mv, _ := meas.Float()
			res.Samples = append(res.Samples, E8Sample{
				At: now, EstCPU: ev, MeasCPU: mv, WindowSize: w1.Size(),
			})
		})
	}
	vc.Schedule(res.ResizeAt, func(clock.Time) {
		w1.SetSize(window / 2)
		w2.SetSize(window / 2)
	})
	e.RunUntil(clock.Time(duration) + 2)
	return res
}

// Table renders the trajectory.
func (r *E8Result) Table() *Table {
	t := &Table{
		Title:  "E8 / Figure 3 — estimated vs measured join CPU usage under a window change",
		Note:   fmt.Sprintf("windows halved at t=%d: the triggered estimate steps immediately; the measurement follows as state expires", r.ResizeAt),
		Header: []string{"t", "windowSize", "estCPU", "measCPU"},
	}
	for _, s := range r.Samples {
		t.Add(int64(s.At), int64(s.WindowSize), s.EstCPU, s.MeasCPU)
	}
	return t
}

// E10Row is one scheduling-strategy result.
type E10Row struct {
	// Strategy names the scheduler.
	Strategy string
	// PeakQueueBytes is the maximum total queue memory observed.
	PeakQueueBytes int64
	// FinalQueueBytes is the queue memory at the end of the run.
	FinalQueueBytes int64
	// Processed is the number of serviced elements.
	Processed int64
}

// RunE10 compares scheduling strategies on queue memory (the Chain
// motivating application [5]): a bursty source feeds two parallel
// two-filter branches — branch A's first filter discards 90% of its
// input, branch B's passes everything — under a tight service budget.
// Chain, informed by live selectivity metadata, spends its budget
// where servicing frees the most queue memory; the oblivious baselines
// waste budget moving branch-B elements from one queue to the next.
func RunE10(duration clock.Duration) []E10Row {
	var rows []E10Row
	for _, strategy := range []string{"roundrobin", "fifo", "chain"} {
		vc := clock.NewVirtual()
		g := graph.New(core.NewEnv(vc))
		src := ops.NewSource(g, "src", benchSchema, 0, 50)
		fa1 := ops.NewFilter(g, "fa1", benchSchema,
			func(tp stream.Tuple) bool { return tp[0].(int)%10 == 0 }, 50)
		fa2 := ops.NewFilter(g, "fa2", benchSchema,
			func(stream.Tuple) bool { return true }, 50)
		fb1 := ops.NewFilter(g, "fb1", benchSchema,
			func(stream.Tuple) bool { return true }, 50)
		fb2 := ops.NewFilter(g, "fb2", benchSchema,
			func(stream.Tuple) bool { return true }, 50)
		sinkA := ops.NewSink(g, "sinkA", benchSchema, nil, 0, 0, 50)
		sinkB := ops.NewSink(g, "sinkB", benchSchema, nil, 0, 0, 50)
		g.Connect(src, fa1)
		g.Connect(fa1, fa2)
		g.Connect(fa2, sinkA)
		g.Connect(src, fb1)
		g.Connect(fb1, fb2)
		g.Connect(fb2, sinkB)

		var sc sched.Scheduler
		switch strategy {
		case "roundrobin":
			sc = sched.NewRoundRobin()
		case "fifo":
			sc = sched.NewFIFO()
		case "chain":
			sc = sched.NewChain()
		}
		// Bursts enqueue 2 elements per unit (one per branch); the
		// budget of 2 services per unit cannot also pay branch B's
		// second hop, so the backlog placement is the scheduler's
		// choice.
		e := engine.New(g, vc, engine.WithScheduler(sc, 2, 1))
		e.Bind(src, stream.NewBursty(0, 1, 300, 300, 0))

		var peak int64
		e.Start()
		for t := clock.Time(1); t <= clock.Time(duration); t++ {
			vc.AdvanceTo(t)
			if b := e.QueuedBytes(); b > peak {
				peak = b
			}
		}
		rows = append(rows, E10Row{
			Strategy:        strategy,
			PeakQueueBytes:  peak,
			FinalQueueBytes: e.QueuedBytes(),
			Processed:       e.Processed(),
		})
		sc.Close()
	}
	return rows
}

// E10Table renders the scheduling comparison.
func E10Table(rows []E10Row) *Table {
	t := &Table{
		Title:  "E10 — Chain scheduling vs baselines (queue memory under overload)",
		Note:   "Chain consumes live selectivity metadata and drains the discarding filter first, minimizing queue memory [5]",
		Header: []string{"strategy", "peakQueueBytes", "finalQueueBytes", "processed"},
	}
	for _, r := range rows {
		t.Add(r.Strategy, r.PeakQueueBytes, r.FinalQueueBytes, r.Processed)
	}
	return t
}

// E11Row is one load-shedding result.
type E11Row struct {
	// Shedding reports whether the load shedder was active.
	Shedding bool
	// FinalMeasuredCPU is the join's measured CPU usage at the end.
	FinalMeasuredCPU float64
	// PeakMeasuredCPU is the maximum observed.
	PeakMeasuredCPU float64
	// FinalDropP is the sampler's final drop probability.
	FinalDropP float64
	// Capacity is the CPU bound given to the shedder.
	Capacity float64
}

// RunE11 runs an overloaded join with and without a metadata-driven
// load shedder in front of it ([21]): with shedding, the measured CPU
// usage converges to the capacity; without, it stays far above.
func RunE11(capacity float64, duration clock.Duration) []E11Row {
	var rows []E11Row
	for _, shedding := range []bool{false, true} {
		vc := clock.NewVirtual()
		g := graph.New(core.NewEnv(vc))
		src1 := ops.NewSource(g, "s1", benchSchema, 0, 100)
		src2 := ops.NewSource(g, "s2", benchSchema, 0, 100)
		sampler := ops.NewSampler(g, "shed", benchSchema, 0, 7, 100)
		w1 := ops.NewTimeWindow(g, "w1", benchSchema, 200, 100)
		w2 := ops.NewTimeWindow(g, "w2", benchSchema, 200, 100)
		join := ops.NewJoin(g, "join", benchSchema, benchSchema,
			func(l, r stream.Tuple) bool { return true }, 100)
		sink := ops.NewSink(g, "sink", join.Schema(), nil, 0, 0, 100)
		g.Connect(src1, sampler)
		g.Connect(sampler, w1)
		g.Connect(src2, w2)
		g.Connect(w1, join)
		g.Connect(w2, join)
		g.Connect(join, sink)

		var shed *resource.LoadShedder
		if shedding {
			var err error
			shed, err = resource.NewLoadShedder(g.Env(), join.Registry(), ops.KindMeasuredCPU, sampler, capacity, 100)
			if err != nil {
				panic(err)
			}
		}
		load, err := join.Registry().Subscribe(ops.KindMeasuredCPU)
		if err != nil {
			panic(err)
		}

		e := engine.New(g, vc)
		e.Bind(src1, stream.NewConstantRate(0, 2, 0))
		e.Bind(src2, stream.NewConstantRate(1, 2, 0))
		e.Start()

		var peak float64
		for t := clock.Time(100); t <= clock.Time(duration); t += 100 {
			vc.AdvanceTo(t + 1)
			if v, _ := load.Float(); v > peak {
				peak = v
			}
		}
		final, _ := load.Float()
		rows = append(rows, E11Row{
			Shedding:         shedding,
			FinalMeasuredCPU: final,
			PeakMeasuredCPU:  peak,
			FinalDropP:       sampler.DropProbability(),
			Capacity:         capacity,
		})
		load.Unsubscribe()
		if shed != nil {
			shed.Close()
		}
	}
	return rows
}

// E11Table renders the shedding comparison.
func E11Table(rows []E11Row) *Table {
	t := &Table{
		Title:  "E11 — load shedding driven by resource-usage metadata",
		Note:   "the shedder raises the drop probability until the measured CPU usage meets the capacity bound [21]",
		Header: []string{"shedding", "capacity", "finalCPU", "peakCPU", "finalDropP"},
	}
	for _, r := range rows {
		t.Add(r.Shedding, r.Capacity, r.FinalMeasuredCPU, r.PeakMeasuredCPU, r.FinalDropP)
	}
	return t
}

// E14Result is the inheritance-override outcome.
type E14Result struct {
	// BaseMemUsage is the memory item value under the inherited
	// definition.
	BaseMemUsage float64
	// OverriddenMemUsage is the value after the subclass redefined
	// the item to include its auxiliary structure.
	OverriddenMemUsage float64
	// HandlersBase and HandlersOverridden count handlers created when
	// subscribing under each definition — redefinition must not add
	// steady-state cost.
	HandlersBase       int64
	HandlersOverridden int64
}

// RunE14 reproduces the Section 4.4.2 example: an operator provides a
// memory-usage item; a specialized implementation overrides it to
// account for an additional index structure.
func RunE14() *E14Result {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	res := &E14Result{}

	// "Super class" node.
	r := env.NewRegistry("op")
	r.MustDefine(&core.Definition{
		Kind:  "stateMem",
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(100.0), nil },
	})
	r.MustDefine(&core.Definition{
		Kind: ops.KindMemUsage,
		Deps: []core.DepRef{core.Dep(core.Self(), "stateMem")},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			h := ctx.Dep(0)
			return core.NewOnDemand(func(clock.Time) (core.Value, error) { return h.Float() }), nil
		},
	})
	before := env.Stats().Snapshot()
	s1, err := r.Subscribe(ops.KindMemUsage)
	if err != nil {
		panic(err)
	}
	res.BaseMemUsage, _ = s1.Float()
	res.HandlersBase = env.Stats().Snapshot().Sub(before).HandlersCreated
	s1.Unsubscribe()

	// "Subclass" redefines memUsage to add its index memory.
	r.MustDefine(&core.Definition{
		Kind:  "indexMem",
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(40.0), nil },
	})
	r.MustDefine(&core.Definition{
		Kind: ops.KindMemUsage,
		Deps: []core.DepRef{core.Dep(core.Self(), "stateMem"), core.Dep(core.Self(), "indexMem")},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			a, b := ctx.Dep(0), ctx.Dep(1)
			return core.NewOnDemand(func(clock.Time) (core.Value, error) {
				va, err := a.Float()
				if err != nil {
					return nil, err
				}
				vb, err := b.Float()
				if err != nil {
					return nil, err
				}
				return va + vb, nil
			}), nil
		},
	})
	mid := env.Stats().Snapshot()
	s2, err := r.Subscribe(ops.KindMemUsage)
	if err != nil {
		panic(err)
	}
	res.OverriddenMemUsage, _ = s2.Float()
	res.HandlersOverridden = env.Stats().Snapshot().Sub(mid).HandlersCreated
	s2.Unsubscribe()
	return res
}

// Table renders the override comparison.
func (r *E14Result) Table() *Table {
	t := &Table{
		Title:  "E14 — metadata inheritance and redefinition (Section 4.4.2)",
		Note:   "the subclass overrides memUsage to reflect its auxiliary index; redefinition adds one dependency handler, no steady-state cost",
		Header: []string{"definition", "memUsage", "handlers created"},
	}
	t.Add("inherited", r.BaseMemUsage, r.HandlersBase)
	t.Add("overridden", r.OverriddenMemUsage, r.HandlersOverridden)
	return t
}

// E15Row is one sweep-area module result.
type E15Row struct {
	// Impl is the module implementation type.
	Impl string
	// MemUsage is the join-level memory item (aggregating modules).
	MemUsage float64
	// MeasuredCPU is the join's measured CPU usage.
	MeasuredCPU float64
	// ModuleItems is the number of metadata items included on the
	// module registries.
	ModuleItems int
}

// RunE15 exchanges the join's sweep-area modules (list vs hash) and
// shows that the join-level metadata follows the modules (Section
// 4.5): the memory item aggregates whatever modules are installed, and
// the measured CPU reflects the hash areas' cheaper probes.
func RunE15(keys int, duration clock.Duration) []E15Row {
	var rows []E15Row
	for _, impl := range []string{"list", "hash"} {
		vc := clock.NewVirtual()
		g := graph.New(core.NewEnv(vc))
		src1 := ops.NewSource(g, "s1", benchSchema, 0, 100)
		src2 := ops.NewSource(g, "s2", benchSchema, 0, 100)
		w1 := ops.NewTimeWindow(g, "w1", benchSchema, 100, 100)
		w2 := ops.NewTimeWindow(g, "w2", benchSchema, 100, 100)
		var opt ops.JoinOption
		if impl == "list" {
			opt = ops.WithListAreas()
		} else {
			opt = ops.WithHashAreas(
				func(tp stream.Tuple) any { return tp[0] },
				func(tp stream.Tuple) any { return tp[0] },
			)
		}
		join := ops.NewJoin(g, "join", benchSchema, benchSchema,
			func(l, r stream.Tuple) bool { return l[0] == r[0] }, 100, opt)
		sink := ops.NewSink(g, "sink", join.Schema(), nil, 0, 0, 100)
		g.Connect(src1, w1)
		g.Connect(src2, w2)
		g.Connect(w1, join)
		g.Connect(w2, join)
		g.Connect(join, sink)

		mem, err := join.Registry().Subscribe(ops.KindMemUsage)
		if err != nil {
			panic(err)
		}
		cpu, err := join.Registry().Subscribe(ops.KindMeasuredCPU)
		if err != nil {
			panic(err)
		}

		keyed := func(i int) stream.Tuple { return stream.Tuple{i % keys} }
		gen1 := stream.NewConstantRate(0, 2, 0)
		gen1.MakeTup = keyed
		gen2 := stream.NewConstantRate(1, 2, 0)
		gen2.MakeTup = keyed

		e := engine.New(g, vc)
		e.Bind(src1, gen1)
		e.Bind(src2, gen2)
		e.RunUntil(clock.Time(duration) + 1)

		mv, _ := mem.Float()
		cv, _ := cpu.Float()
		rows = append(rows, E15Row{
			Impl:        impl,
			MemUsage:    mv,
			MeasuredCPU: cv,
			ModuleItems: len(join.Area(0).Registry().Included()) + len(join.Area(1).Registry().Included()),
		})
		mem.Unsubscribe()
		cpu.Unsubscribe()
	}
	return rows
}

// E15Table renders the module comparison.
func E15Table(rows []E15Row) *Table {
	t := &Table{
		Title:  "E15 — metadata of exchangeable modules (list vs hash sweep areas)",
		Note:   "join-level memUsage aggregates module metadata recursively; hash areas probe fewer candidates, visible in the measured CPU item",
		Header: []string{"module", "memUsage", "measuredCPU", "included module items"},
	}
	for _, r := range rows {
		t.Add(r.Impl, r.MemUsage, r.MeasuredCPU, r.ModuleItems)
	}
	return t
}

// RunF2 demonstrates the metadata taxonomy of Figure 2 on a small live
// graph: one item per mechanism, with its kind, mechanism, and current
// value.
func RunF2() *Table {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	src := ops.NewSource(g, "src", benchSchema, 0.5, 50)
	f := ops.NewFilter(g, "filter", benchSchema, func(tp stream.Tuple) bool { return tp[0].(int)%2 == 0 }, 50)
	sink := ops.NewSink(g, "sink", benchSchema, nil, 100, 1, 50)
	g.Connect(src, f)
	g.Connect(f, sink)

	e := engine.New(g, vc)
	e.Bind(src, stream.NewConstantRate(0, 2, 0))

	items := []struct {
		reg  *core.Registry
		kind core.Kind
	}{
		{src.Registry(), ops.KindSchema},
		{src.Registry(), ops.KindElementSize},
		{sink.Registry(), ops.KindQoSLatency},
		{f.Registry(), ops.KindCountIn},
		{f.Registry(), ops.KindCountOut},
		{f.Registry(), ops.KindInputRate},
		{f.Registry(), ops.KindSelectivity},
		{f.Registry(), ops.KindAvgInputRate},
	}
	t := &Table{
		Title:  "F2 / Figure 2 — metadata types and maintenance concepts, live",
		Note:   "static items never update; on-demand computes at access; periodic publishes per window; triggered follows its dependencies",
		Header: []string{"node", "item", "mechanism", "value@t=500"},
	}
	var subs []*core.Subscription
	for _, it := range items {
		s, err := it.reg.Subscribe(it.kind)
		if err != nil {
			panic(err)
		}
		subs = append(subs, s)
	}
	e.RunUntil(500)
	for i, it := range items {
		v, err := subs[i].Value()
		cell := fmt.Sprint(v)
		if err != nil {
			cell = "err: " + err.Error()
		}
		if sc, ok := v.(stream.Schema); ok {
			cell = sc.Name
		}
		mech, _ := it.reg.Mechanism(it.kind)
		t.Add(it.reg.ID(), string(it.kind), mech.String(), cell)
	}
	for _, s := range subs {
		s.Unsubscribe()
	}
	return t
}

// RunInventory builds a small shared-subquery graph, subscribes to a
// few items, and renders the per-node metadata discovery view of
// Section 2.2.
func RunInventory() string {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	src := ops.NewSource(g, "src", benchSchema, 0.5, 50)
	f := ops.NewFilter(g, "filter", benchSchema, func(stream.Tuple) bool { return true }, 50)
	s1 := ops.NewSink(g, "app1", benchSchema, nil, 100, 1, 50)
	s2 := ops.NewSink(g, "app2", benchSchema, nil, 200, 2, 50)
	g.Connect(src, f)
	g.Connect(f, s1)
	g.Connect(f, s2)
	sub, err := f.Registry().Subscribe(ops.KindAvgInputRate)
	if err != nil {
		panic(err)
	}
	defer sub.Unsubscribe()
	return monitor.FormatInventory(monitor.Inventory(g))
}
