package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/core"
)

// E19Row is one mode of the batched-update-pipeline experiment.
type E19Row struct {
	// Mode is "batched" (default pipeline) or "per-handler" (the
	// WithPerHandlerTicks ablation: one dispatch and one propagation
	// per handler per boundary).
	Mode string
	// Handlers is the total number of periodic handlers.
	Handlers int
	// Scopes is the number of independent dependency scopes the
	// handlers are spread over.
	Scopes int
	// Boundaries is the number of timed window boundaries.
	Boundaries int
	// NsPerBoundary is wall time per window boundary.
	NsPerBoundary int64
	// SubmitsPerBoundary is the number of Updater.Submit dispatches
	// per boundary: scopes for the batched pipeline, handlers for the
	// per-handler baseline.
	SubmitsPerBoundary float64
	// RefreshesPerBoundary is the number of trigger notifications per
	// boundary across the per-scope fan-in dependents: scopes when
	// same-instant publishes coalesce, handlers when they do not.
	RefreshesPerBoundary float64
	// MeanBatchSize is periodic ticks per scope batch (0 in
	// per-handler mode, which never forms batches).
	MeanBatchSize float64
	// PlanHitRate is the propagation-plan cache hit rate.
	PlanHitRate float64
}

// submitCounter wraps an updater and counts Submit calls. Wrapping
// also defeats the inline-updater fast path, so the batched pipeline's
// dispatches become observable as Submit calls.
type submitCounter struct {
	inner core.Updater
	n     atomic.Int64
}

func (c *submitCounter) Submit(fn func()) {
	c.n.Add(1)
	c.inner.Submit(fn)
}
func (c *submitCounter) WaitIdle() { c.inner.WaitIdle() }
func (c *submitCounter) Stop()     { c.inner.Stop() }

// RunE19 measures the batched update pipeline against the per-handler
// baseline: `handlers` periodic items with a shared window are spread
// over `scopes` registries (each its own dependency scope), each scope
// topped by a triggered aggregate over all of its periodic items. At
// every window boundary all handlers are due at the same instant. The
// batched pipeline dispatches one scope batch per scope (one
// Updater.Submit each) and refreshes each aggregate once; the
// per-handler ablation dispatches every handler separately and
// re-propagates per publish, refreshing each aggregate once per local
// publisher.
func RunE19(handlers, scopes, boundaries int, elapsed func(fn func()) int64) []E19Row {
	var rows []E19Row
	for _, mode := range []string{"per-handler", "batched"} {
		rows = append(rows, RunE19Mode(mode, handlers, scopes, boundaries, elapsed))
	}
	return rows
}

// RunE19Mode runs one mode of E19: "batched" or "per-handler".
func RunE19Mode(mode string, handlers, scopes, boundaries int, elapsed func(fn func()) int64) E19Row {
	if handlers%scopes != 0 {
		panic("handlers must divide evenly over scopes")
	}
	perScope := handlers / scopes
	var opts []core.EnvOption
	if mode == "per-handler" {
		opts = append(opts, core.WithPerHandlerTicks())
	}
	vc := clock.NewVirtual()
	cu := &submitCounter{inner: core.NewInlineUpdater()}
	env := core.NewEnv(vc, append(opts, core.WithUpdater(cu))...)

	subs := make([]*core.Subscription, 0, scopes)
	for s := 0; s < scopes; s++ {
		r := env.NewRegistry(fmt.Sprintf("op%d", s))
		deps := make([]core.DepRef, 0, perScope)
		for i := 0; i < perScope; i++ {
			kind := core.Kind(fmt.Sprintf("p%d", i))
			r.MustDefine(&core.Definition{
				Kind: kind,
				Build: func(*core.BuildContext) (core.Handler, error) {
					return core.NewPeriodic(10, func(start, end clock.Time) (core.Value, error) {
						return float64(end), nil
					}), nil
				},
			})
			deps = append(deps, core.Dep(core.Self(), kind))
		}
		r.MustDefine(&core.Definition{
			Kind: "agg",
			Deps: deps,
			Build: func(ctx *core.BuildContext) (core.Handler, error) {
				hs := make([]*core.Handle, len(deps))
				for i := range deps {
					hs[i] = ctx.Dep(i)
				}
				return core.NewTriggered(func(clock.Time) (core.Value, error) {
					var sum float64
					for _, h := range hs {
						v, err := h.Float()
						if err != nil {
							return nil, err
						}
						sum += v
					}
					return sum, nil
				}), nil
			},
		})
		sub, err := r.Subscribe("agg")
		if err != nil {
			panic(err)
		}
		subs = append(subs, sub)
	}

	// Warm-up boundary: builds the propagation plans so the timed loop
	// measures the steady state.
	vc.Advance(10)

	before := env.Stats().Snapshot()
	cu.n.Store(0)
	ns := elapsed(func() {
		for b := 0; b < boundaries; b++ {
			vc.Advance(10)
		}
	})
	delta := env.Stats().Snapshot().Sub(before)

	// Sanity: every aggregate ends on the shared boundary value.
	want := float64(perScope) * float64(env.Now())
	for _, sub := range subs {
		if got, err := sub.Float(); err != nil || got != want {
			panic(fmt.Sprintf("agg = %v, %v; want %v", got, err, want))
		}
		sub.Unsubscribe()
	}

	return E19Row{
		Mode:                 mode,
		Handlers:             handlers,
		Scopes:               scopes,
		Boundaries:           boundaries,
		NsPerBoundary:        ns / int64(boundaries),
		SubmitsPerBoundary:   float64(cu.n.Load()) / float64(boundaries),
		RefreshesPerBoundary: float64(delta.TriggerNotifications) / float64(boundaries),
		MeanBatchSize:        delta.MeanBatchSize(),
		PlanHitRate:          delta.PlanHitRate(),
	}
}

// E19Table renders the batched-pipeline comparison.
func E19Table(rows []E19Row) *Table {
	t := &Table{
		Title:  "E19 — batched update pipeline vs per-handler ticks",
		Note:   "same-boundary periodic handlers: the batched pipeline dispatches one scope batch per scope per boundary and coalesces propagation (one refresh per dependent per instant); the per-handler ablation dispatches and propagates once per handler",
		Header: []string{"mode", "handlers", "scopes", "ns/boundary", "submits/boundary", "refreshes/boundary", "mean batch", "plan hit rate"},
	}
	for _, r := range rows {
		t.Add(r.Mode, r.Handlers, r.Scopes, r.NsPerBoundary, r.SubmitsPerBoundary, r.RefreshesPerBoundary,
			fmt.Sprintf("%.1f", r.MeanBatchSize), fmt.Sprintf("%.3f", r.PlanHitRate))
	}
	return t
}
