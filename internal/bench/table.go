// Package bench implements the experiment harness: one driver per
// figure and per quantitative claim of the paper (see DESIGN.md's
// experiment index E1–E15/F2). Each driver runs a deterministic
// virtual-clock workload and returns both a structured result (for
// assertions in tests and benchmarks) and a printable table matching
// the paper's presentation.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// Title identifies the experiment (e.g. "E1 / Figure 4").
	Title string
	// Note states the expected shape from the paper.
	Note string
	// Header labels the columns.
	Header []string
	// Rows holds the data.
	Rows [][]string
}

// Add appends a row formatted with fmt.Sprint on each cell.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "=== %s ===\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
