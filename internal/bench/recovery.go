package bench

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/persist"
)

// E24 — durable restart: time-to-first-read after a process start.
// Cold start pays one full compute per subscribed item before the
// first read can be served; a warm start recovers the checkpointed
// plane and serves every item's pre-shutdown last-good value (tagged
// ErrStale) without computing anything, deferring recomputation to the
// background probe machinery.

// E24Row is one start mode at one plane size.
type E24Row struct {
	// Mode is "cold" (fresh plane, every value computed inline) or
	// "warm" (recovered plane, every value served from the checkpoint).
	Mode string
	// Items is the number of subscribed metadata items.
	Items int
	// NsTotal is process-start to last-item-read: subscribe+compute for
	// cold, recovery (checkpoint load + re-pin + restore) for warm.
	NsTotal int64
	// NsPerItem is NsTotal / Items.
	NsPerItem int64
	// Computes counts metadata compute calls inside the timed window —
	// Items for cold, 0 for warm (the whole point).
	Computes int64
	// Restored counts items served from the checkpoint (warm only).
	Restored int64
}

// e24Spin is the per-item compute cost in loop iterations (~190 us) —
// stands in for the windowed statistics fold a real metadata compute
// pays, e.g. re-aggregating a large rate window from scratch.
const e24Spin = 400000

var e24CodecOnce sync.Once

// e24Codec registers the benchmark's definition codec: args is
// "idx,spin" and the rebuilt item computes float64(idx) after spinning.
func e24Codec() {
	e24CodecOnce.Do(func() {
		persist.RegisterCodec("bench.cell", func(args string) (*core.Definition, error) {
			idxs, spins, ok := strings.Cut(args, ",")
			if !ok {
				return nil, fmt.Errorf("bad args %q", args)
			}
			idx, err := strconv.Atoi(idxs)
			if err != nil {
				return nil, err
			}
			spin, err := strconv.Atoi(spins)
			if err != nil {
				return nil, err
			}
			return e24Definition(idx, spin), nil
		})
	})
}

func e24Definition(idx, spin int) *core.Definition {
	compute := func(clock.Time) (core.Value, error) {
		acc := 0.0
		for i := 0; i < spin; i++ {
			acc += math.Sqrt(float64(i))
		}
		_ = acc
		return float64(idx), nil
	}
	return &core.Definition{
		Kind:        core.Kind(fmt.Sprintf("cell%d", idx)),
		Persist:     "bench.cell",
		PersistArgs: fmt.Sprintf("%d,%d", idx, spin),
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(compute), nil
		},
	}
}

// e24Env builds the process-start state both modes share: a
// breaker-armed env and a registry with items codec-backed definitions
// already registered (node constructors run before recovery).
func e24Env(items int) (*core.Env, *core.Registry) {
	e24Codec()
	env := core.NewEnv(clock.NewVirtual(), core.WithBreaker(core.DefaultBreakerPolicy))
	r := env.NewRegistry("op")
	for i := 0; i < items; i++ {
		r.MustDefine(e24Definition(i, e24Spin))
	}
	return env, r
}

// e24Seed runs one durable "first life" to completion: subscribe every
// item, checkpoint, shut down cleanly. The directory then holds what a
// restarted process finds.
func e24Seed(dir string, items int) error {
	env, r := e24Env(items)
	plane, _, err := persist.Open(env, dir, persist.Options{Sync: persist.SyncNone}, r)
	if err != nil {
		return err
	}
	for i := 0; i < items; i++ {
		if _, err := r.Subscribe(core.Kind(fmt.Sprintf("cell%d", i))); err != nil {
			return err
		}
	}
	return plane.Close()
}

// RunE24Mode times one start mode. Cold subscribes every item on a
// fresh plane (each subscribe computes inline before the item is
// readable); warm opens the seeded directory and recovery re-pins and
// restores every item from the checkpoint. Both end with a read of
// every item — cold reads fresh values, warm reads the pre-shutdown
// values tagged stale.
func RunE24Mode(mode, dir string, items int, elapsed func(fn func()) int64) (E24Row, error) {
	env, r := e24Env(items)
	row := E24Row{Mode: mode, Items: items}
	start := env.Stats().Snapshot()
	readAll := func() error {
		for i := 0; i < items; i++ {
			v, err := r.Peek(core.Kind(fmt.Sprintf("cell%d", i)))
			if err != nil && !errors.Is(err, core.ErrStale) {
				return fmt.Errorf("cell%d: %w", i, err)
			}
			if f, ok := v.(float64); !ok || f != float64(i) {
				return fmt.Errorf("cell%d = %v, want %d", i, v, i)
			}
		}
		return nil
	}
	var err error
	switch mode {
	case "cold":
		row.NsTotal = elapsed(func() {
			for i := 0; i < items && err == nil; i++ {
				_, err = r.Subscribe(core.Kind(fmt.Sprintf("cell%d", i)))
			}
			if err == nil {
				err = readAll()
			}
		})
	case "warm":
		var rs *persist.RecoveryStats
		row.NsTotal = elapsed(func() {
			_, rs, err = persist.Open(env, dir, persist.Options{Sync: persist.SyncNone}, r)
			if err == nil {
				err = readAll()
			}
		})
		if rs != nil {
			row.Restored = int64(rs.Restored)
		}
	default:
		err = fmt.Errorf("E24: unknown mode %q", mode)
	}
	if err != nil {
		return row, err
	}
	row.NsPerItem = row.NsTotal / int64(items)
	row.Computes = env.Stats().Snapshot().Sub(start).ComputeCalls
	return row, nil
}

// RunE24 seeds a durable plane of the given size in dir and times a
// cold start against a warm (recovered) start of the same topology.
func RunE24(dir string, items int, elapsed func(fn func()) int64) ([]E24Row, error) {
	if err := e24Seed(dir, items); err != nil {
		return nil, err
	}
	cold, err := RunE24Mode("cold", dir, items, elapsed)
	if err != nil {
		return nil, err
	}
	warm, err := RunE24Mode("warm", dir, items, elapsed)
	if err != nil {
		return nil, err
	}
	return []E24Row{cold, warm}, nil
}

// E24Table renders the restart comparison.
func E24Table(rows []E24Row) *Table {
	t := &Table{
		Title:  "E24 — durable restart: warm recovery vs cold recompute",
		Note:   "time from process start to every subscribed item readable. Cold pays one inline compute per item before first read; warm loads the checkpoint, re-pins every subscription, and serves each item's pre-shutdown last-good value (tagged stale, recomputed later in the background), so its start cost is decode + republish instead of compute",
		Header: []string{"mode", "items", "ns total", "ns/item", "computes", "restored"},
	}
	for _, r := range rows {
		t.Add(r.Mode, r.Items, r.NsTotal, r.NsPerItem, r.Computes, r.Restored)
	}
	return t
}
