package bench

import (
	"fmt"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/watch"
)

// E23Row is one (mode, watchers) cell of the watch fan-out
// experiment.
type E23Row struct {
	// Mode is "hub" (epoch-diff watch hub: O(1) publish, coalesced
	// async sweeps) or "callback" (ablation: every publication invokes
	// every subscriber's callback inline, O(watchers) publish).
	Mode string
	// Watchers is the subscriber count on the single published item.
	Watchers int
	// Publishes is how many publications the run timed.
	Publishes int
	// NsPerPublish is wall time per publication, including (for the
	// hub) the final barrier that drains outstanding sweeps.
	NsPerPublish int64
	// Delivered counts subscriber-visible notifications: callback
	// invocations, or hub events pulled off watcher rings — fewer than
	// Publishes*Watchers when coalescing merged versions.
	Delivered int64
	// Coalesced is the hub's publications absorbed into an already
	// pending wakeup (0 for callback mode).
	Coalesced int64
	// Shed is the hub's notifications shed onto full subscriber rings
	// via coalesce-to-latest overwrite (0 for callback mode).
	Shed int64
}

// E23System builds the fan-out plane: a static "src" and a triggered
// "val" that republishes on every src notification. The returned
// publish fires exactly one new version of "val" per call.
func E23System() (*core.Env, *core.Registry, func()) {
	env := core.NewEnv(clock.NewVirtual())
	r := env.NewRegistry("op")
	r.MustDefine(&core.Definition{
		Kind:  "src",
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(0.0), nil },
	})
	n := new(atomic.Int64)
	r.MustDefine(&core.Definition{
		Kind: "val",
		Deps: []core.DepRef{core.Dep(core.Self(), "src")},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return float64(n.Load()), nil
			}), nil
		},
	})
	return env, r, func() {
		n.Add(1)
		r.NotifyChanged("src")
	}
}

// RunE23Mode times publishes publications of one item fanned out to
// watchers subscribers through the given mode. Subscriber setup is
// excluded from the timing; for the hub the timing includes a final
// Barrier so every publication's delivery work is inside the window.
func RunE23Mode(mode string, watchers, publishes int, elapsed func(fn func()) int64) E23Row {
	env, r, publish := E23System()
	row := E23Row{Mode: mode, Watchers: watchers, Publishes: publishes}
	switch mode {
	case "callback":
		nh := watch.NewNaiveHub()
		defer nh.Close()
		var delivered atomic.Int64
		cb := func(uint64) { delivered.Add(1) }
		for i := 0; i < watchers; i++ {
			if err := nh.Subscribe(r, "val", cb); err != nil {
				panic(err)
			}
		}
		ns := elapsed(func() {
			for i := 0; i < publishes; i++ {
				publish()
			}
		})
		row.NsPerPublish = ns / int64(publishes)
		row.Delivered = delivered.Load()
	case "hub":
		h := watch.NewHub(env)
		defer h.Close()
		ws := make([]*watch.Watcher, watchers)
		for i := range ws {
			w, err := h.Watch(r, "val", watch.Options{Since: 1, Buffer: 2})
			if err != nil {
				panic(err)
			}
			ws[i] = w
		}
		start := env.Stats().Snapshot()
		ns := elapsed(func() {
			for i := 0; i < publishes; i++ {
				publish()
			}
			h.Barrier()
		})
		row.NsPerPublish = ns / int64(publishes)
		win := env.Stats().Snapshot().Sub(start)
		row.Coalesced = win.CoalescedWakeups
		row.Shed = win.ShedNotifies
		for _, w := range ws {
			for {
				if _, ok := w.Poll(); !ok {
					break
				}
				row.Delivered++
			}
			w.Close()
		}
	default:
		panic(fmt.Sprintf("E23: unknown mode %q", mode))
	}
	return row
}

// RunE23 runs both modes at each watcher count.
func RunE23(watcherCounts []int, publishes int, elapsed func(fn func()) int64) []E23Row {
	var rows []E23Row
	for _, w := range watcherCounts {
		rows = append(rows, RunE23Mode("callback", w, publishes, elapsed))
		rows = append(rows, RunE23Mode("hub", w, publishes, elapsed))
	}
	return rows
}

// E23Table renders the fan-out comparison.
func E23Table(rows []E23Row) *Table {
	t := &Table{
		Title:  "E23 — watch fan-out: epoch-diff hub vs per-subscriber callbacks",
		Note:   "one item, N subscribers, back-to-back publications. The callback baseline pays O(N) inline per publish; the hub pays O(1) per publish (version bump + dirty election) and delivers on an async sweeper that coalesces bursts, so ns/publish stays flat as N grows",
		Header: []string{"mode", "watchers", "publishes", "ns/publish", "delivered", "coalesced", "shed"},
	}
	for _, r := range rows {
		t.Add(r.Mode, r.Watchers, r.Publishes, r.NsPerPublish, r.Delivered, r.Coalesced, r.Shed)
	}
	return t
}
