package bench

import (
	"strings"
	"testing"
)

func TestE21DeltaVsFold(t *testing.T) {
	elapsed := func(fn func()) int64 { fn(); return 1 }
	rows := RunE21(50, 2000, elapsed)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	fold, delta := rows[0], rows[1]
	if fold.Mode != "fold" || delta.Mode != "delta" {
		t.Fatalf("modes = %q, %q", fold.Mode, delta.Mode)
	}
	// Fold ablation: the channel never fires; every tick re-folds.
	if fold.DeltaFires != 0 {
		t.Fatalf("fold deltaFires = %d, want 0", fold.DeltaFires)
	}
	if fold.ComputesPerKiloFire < 1000 {
		t.Fatalf("fold computes/1k = %v, want >= 1000", fold.ComputesPerKiloFire)
	}
	// Delta mode: the steady state fires the O(1) path on (nearly)
	// every tick — only the scheduled rebases (every 1024 applications
	// for DeltaSum's default) re-fold.
	if delta.DeltaFires < int64(delta.Fires)-delta.DeltaRebases-delta.DeltaFallbacks {
		t.Fatalf("delta fires = %d of %d (fallbacks=%d rebases=%d)",
			delta.DeltaFires, delta.Fires, delta.DeltaFallbacks, delta.DeltaRebases)
	}
	if delta.DeltaFallbacks != 0 {
		t.Fatalf("delta fallbacks = %d, want 0 (no structural churn in the loop)", delta.DeltaFallbacks)
	}
	if delta.DeltaRebases == 0 {
		t.Fatalf("delta rebases = 0, want > 0 (2000 fires over the 1024 default interval)")
	}
	if delta.DeltaHitRate < 0.99 {
		t.Fatalf("delta hit rate = %v, want >= 0.99", delta.DeltaHitRate)
	}

	var b strings.Builder
	E21Table(rows).Fprint(&b)
	for _, want := range []string{"delta", "fold", "E21"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, b.String())
		}
	}
}
