package bench

import (
	"math"
	"strings"
	"testing"
)

func TestE1NaiveRatesWrongPeriodicExact(t *testing.T) {
	r := RunE1(8)
	if len(r.User1Naive) != 8 || len(r.User2Naive) != 8 {
		t.Fatalf("access counts: %d/%d", len(r.User1Naive), len(r.User2Naive))
	}
	// Steady state (skip the first access of each user): the figure's
	// effect — both users wrong, measurements complementary.
	for i := 1; i < 8; i++ {
		if r.User1Naive[i] == r.TrueRate {
			t.Fatalf("user1 naive access %d = true rate; interference expected", i)
		}
		if r.User2Naive[i] == r.TrueRate {
			t.Fatalf("user2 naive access %d = true rate; interference expected", i)
		}
		// The two wrong rates sum to the true rate: elements are split
		// between the readers, none lost.
		if sum := r.User1Naive[i] + r.User2Naive[i]; math.Abs(sum-r.TrueRate) > 1e-9 {
			t.Fatalf("naive rates do not sum to 0.1 at access %d: %v", i, sum)
		}
	}
	// The shared periodic handler is exact for both users at every
	// access from the first full window on.
	for i := 1; i < 8; i++ {
		if r.User1Periodic[i] != 0.1 || r.User2Periodic[i] != 0.1 {
			t.Fatalf("periodic values at access %d: %v / %v, want 0.1",
				i, r.User1Periodic[i], r.User2Periodic[i])
		}
	}
}

func TestE1SteadyStateMatchesFigure(t *testing.T) {
	r := RunE1(8)
	// With accesses at 50k (user1) and 50k+20 (user2) over arrivals
	// every 10 units: user1's inter-access window catches 3 elements
	// (0.06), user2's catches 2 (0.04).
	for i := 2; i < 8; i++ {
		if math.Abs(r.User1Naive[i]-0.06) > 1e-9 {
			t.Fatalf("user1 steady naive = %v, want 0.06", r.User1Naive[i])
		}
		if math.Abs(r.User2Naive[i]-0.04) > 1e-9 {
			t.Fatalf("user2 steady naive = %v, want 0.04", r.User2Naive[i])
		}
	}
}

func TestE1Table(t *testing.T) {
	tab := RunE1(4).Table()
	out := tab.String()
	if !strings.Contains(out, "Figure 4") || len(tab.Rows) != 4 {
		t.Fatalf("table wrong:\n%s", out)
	}
}

func TestE2OnDemandBiasedTriggeredCorrect(t *testing.T) {
	// Bursts: 20 units at rate 1, then 80 units silence; mean 0.2.
	r := RunE2(20, 80, 10, 50)
	if r.TrueMean != 0.2 {
		t.Fatalf("true mean = %v, want 0.2", r.TrueMean)
	}
	// The on-demand average sampled at peaks must be far too high.
	if r.OnDemandAvg < 0.8 {
		t.Fatalf("on-demand avg = %v, want ~peak 1.0 (biased)", r.OnDemandAvg)
	}
	// The triggered average must be close to the true mean.
	if math.Abs(r.TriggeredAvg-r.TrueMean) > 0.05 {
		t.Fatalf("triggered avg = %v, want ~%v", r.TriggeredAvg, r.TrueMean)
	}
}

func TestE2Table(t *testing.T) {
	out := RunE2(20, 80, 10, 10).Table().String()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "triggered average") {
		t.Fatalf("table wrong:\n%s", out)
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "T", Note: "n", Header: []string{"a", "bb"}}
	tab.Add(1, 2.5)
	tab.Add("xx", "y")
	out := tab.String()
	for _, want := range []string{"=== T ===", "a", "bb", "xx", "2.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
