package bench

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/optimizer"
	"repro/internal/sched"
	"repro/internal/stream"
)

// E16Result is the adaptive filter-reordering outcome.
type E16Result struct {
	// CPUBefore is the chain's total measured CPU usage (work
	// units/time) before reordering.
	CPUBefore float64
	// CPUAfter is the usage after the optimizer reordered the
	// predicates by rank = cost/(1-selectivity).
	CPUAfter float64
	// RanksBefore are the slot ranks that triggered the reorder.
	RanksBefore []float64
	// Reorders is the number of order changes performed.
	Reorders int
	// ResultsMatch reports that the optimized plan delivered exactly
	// the same result stream as the original.
	ResultsMatch bool
}

// RunE16 demonstrates runtime query re-optimization (motivating
// application 3): a filter chain starts in the worst order — an
// expensive, barely selective predicate first — and the optimizer,
// reading live selectivity metadata, reorders the commuting predicates
// to ascending rank.
func RunE16(duration clock.Duration) *E16Result {
	run := func(optimize bool) (float64, float64, []float64, int, []int) {
		vc := clock.NewVirtual()
		g := graph.New(core.NewEnv(vc))
		src := ops.NewSource(g, "src", benchSchema, 1, 100)
		f1 := ops.NewFilter(g, "f1", benchSchema,
			func(tp stream.Tuple) bool { return tp[0].(int)%10 != 0 }, 100) // sel 0.9
		f1.SetCostPerElement(10)
		f2 := ops.NewFilter(g, "f2", benchSchema,
			func(tp stream.Tuple) bool { return tp[0].(int)%10 == 1 }, 100) // sel 0.1
		f2.SetCostPerElement(1)
		var results []int
		sink := ops.NewSink(g, "sink", benchSchema, func(el stream.Element) {
			results = append(results, el.Tuple[0].(int))
		}, 0, 0, 100)
		g.Connect(src, f1)
		g.Connect(f1, f2)
		g.Connect(f2, sink)

		cpu1, _ := f1.Registry().Subscribe(ops.KindMeasuredCPU)
		defer cpu1.Unsubscribe()
		cpu2, _ := f2.Registry().Subscribe(ops.KindMeasuredCPU)
		defer cpu2.Unsubscribe()

		// The optimizer subscribes before the run so the selectivity
		// measurements have elapsed windows behind them by the time it
		// decides.
		var chain *optimizer.FilterChain
		if optimize {
			var err error
			chain, err = optimizer.NewFilterChain(f1, f2)
			if err != nil {
				panic(err)
			}
			defer chain.Close()
		}

		e := engine.New(g, vc)
		e.Bind(src, stream.NewConstantRate(0, 1, 0))
		e.RunUntil(clock.Time(duration) / 3)
		a1, _ := cpu1.Float()
		a2, _ := cpu2.Float()
		before := a1 + a2

		var ranks []float64
		reorders := 0
		if optimize {
			ranks = chain.Ranks()
			chain.Optimize()
			reorders = chain.Reorders()
		}
		e.RunUntil(clock.Time(duration))
		b1, _ := cpu1.Float()
		b2, _ := cpu2.Float()
		return before, b1 + b2, ranks, reorders, results
	}

	before, after, ranks, reorders, optimized := run(true)
	_, _, _, _, plain := run(false)
	match := len(plain) == len(optimized)
	if match {
		for i := range plain {
			if plain[i] != optimized[i] {
				match = false
				break
			}
		}
	}
	return &E16Result{
		CPUBefore:    before,
		CPUAfter:     after,
		RanksBefore:  ranks,
		Reorders:     reorders,
		ResultsMatch: match,
	}
}

// Table renders the reordering outcome.
func (r *E16Result) Table() *Table {
	t := &Table{
		Title:  "E16 — adaptive filter reordering on selectivity metadata (motivating app 3)",
		Note:   "the optimizer moves the cheap, selective predicate first (rank = cost/(1-sel)); the query result is unchanged",
		Header: []string{"quantity", "value"},
	}
	t.Add("chain CPU before (work/time)", r.CPUBefore)
	t.Add("chain CPU after", r.CPUAfter)
	t.Add("improvement", r.CPUBefore/r.CPUAfter)
	if len(r.RanksBefore) == 2 {
		t.Add("slot ranks before", trimFloat(r.RanksBefore[0])+" / "+trimFloat(r.RanksBefore[1]))
	}
	t.Add("reorders", r.Reorders)
	t.Add("results identical", r.ResultsMatch)
	return t
}

// E17Row is one advisor recommendation.
type E17Row struct {
	// Phase labels the workload phase ("initial" / "after B spikes").
	Phase string
	// Plan is the recommended ordering.
	Plan string
	// EstCPU is its cost estimate.
	EstCPU float64
	// Alternatives are the rejected plans with their costs.
	Alternatives []optimizer.Ordering
}

// RunE17 demonstrates the join-order advisor: three streams with rates
// (0.1, 0.1, 0.5); the advisor recommends joining the two slow streams
// first. When stream B's rate spikes to 5, the recommendation flips to
// pairing A with C — the re-optimization trigger the paper motivates
// with "changes in stream characteristics, such as stream rates".
func RunE17() []E17Row {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	rateB := 0.1
	mk := func(name string, static float64, dynamic bool) *core.Subscription {
		r := env.NewRegistry(name)
		if dynamic {
			r.MustDefine(&core.Definition{
				Kind:   "estOutputRate",
				Events: []string{"rateChanged"},
				Build: func(*core.BuildContext) (core.Handler, error) {
					return core.NewTriggered(func(clock.Time) (core.Value, error) { return rateB, nil }), nil
				},
			})
		} else {
			r.MustDefine(&core.Definition{
				Kind:  "estOutputRate",
				Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(static), nil },
			})
		}
		sub, err := r.Subscribe("estOutputRate")
		if err != nil {
			panic(err)
		}
		return sub
	}
	ra := mk("A", 0.1, false)
	defer ra.Unsubscribe()
	rb := mk("B", 0, true)
	defer rb.Unsubscribe()
	rc := mk("C", 0.5, false)
	defer rc.Unsubscribe()

	adv := optimizer.NewJoinOrderAdvisor(
		optimizer.JoinInput{Name: "A", Rate: ra, Validity: 100},
		optimizer.JoinInput{Name: "B", Rate: rb, Validity: 100},
		optimizer.JoinInput{Name: "C", Rate: rc, Validity: 100},
		0.05, 1,
	)

	var rows []E17Row
	recs, err := adv.Recommend()
	if err != nil {
		panic(err)
	}
	rows = append(rows, E17Row{Phase: "initial (rB=0.1)", Plan: recs[0].Description, EstCPU: recs[0].EstCPU, Alternatives: recs[1:]})

	rateB = 5
	rb.Handle().Registry().FireEvent("rateChanged")
	recs, err = adv.Recommend()
	if err != nil {
		panic(err)
	}
	rows = append(rows, E17Row{Phase: "after spike (rB=5)", Plan: recs[0].Description, EstCPU: recs[0].EstCPU, Alternatives: recs[1:]})
	return rows
}

// E17Table renders the advisor comparison.
func E17Table(rows []E17Row) *Table {
	t := &Table{
		Title:  "E17 — join-order advisor on estimated-rate metadata ([22, 25, 18])",
		Note:   "the cost model scores all orderings from live rate estimates; a rate spike flips the recommendation",
		Header: []string{"phase", "recommended plan", "estCPU", "runner-up", "estCPU"},
	}
	for _, r := range rows {
		ru, rc := "-", 0.0
		if len(r.Alternatives) > 0 {
			ru, rc = r.Alternatives[0].Description, r.Alternatives[0].EstCPU
		}
		t.Add(r.Phase, r.Plan, r.EstCPU, ru, rc)
	}
	return t
}

// E18Row is one scheduling strategy's latency outcome.
type E18Row struct {
	// Strategy names the scheduler.
	Strategy string
	// HiLatency and LoLatency are the measured average delivery
	// latencies of the high- and low-priority query.
	HiLatency float64
	LoLatency float64
}

// RunE18 compares QoS-priority scheduling against round-robin on two
// identical queries with priorities 9 and 1 under bursty overload: the
// priority scheduler reads the sinks' query-level qosPriority metadata
// (Figure 1) and delivers the important query with near-immediate
// latency, while round-robin treats both alike.
func RunE18(duration clock.Duration) []E18Row {
	var rows []E18Row
	for _, strategy := range []string{"roundrobin", "qos"} {
		vc := clock.NewVirtual()
		g := graph.New(core.NewEnv(vc))
		src := ops.NewSource(g, "src", benchSchema, 0, 200)
		lo := ops.NewFilter(g, "lo", benchSchema, func(stream.Tuple) bool { return true }, 200)
		hi := ops.NewFilter(g, "hi", benchSchema, func(stream.Tuple) bool { return true }, 200)
		loSink := ops.NewSink(g, "loSink", benchSchema, nil, 0, 1, 500)
		hiSink := ops.NewSink(g, "hiSink", benchSchema, nil, 0, 9, 500)
		g.Connect(src, lo)
		g.Connect(src, hi)
		g.Connect(lo, loSink)
		g.Connect(hi, hiSink)

		var sc sched.Scheduler
		if strategy == "qos" {
			sc = sched.NewQoS()
		} else {
			sc = sched.NewRoundRobin()
		}
		e := engine.New(g, vc, engine.WithScheduler(sc, 1, 1))
		e.Bind(src, stream.NewBursty(0, 1, 300, 300, 0))

		loLat, _ := loSink.Registry().Subscribe(ops.KindAvgLatency)
		hiLat, _ := hiSink.Registry().Subscribe(ops.KindAvgLatency)
		e.RunUntil(clock.Time(duration))
		loV, _ := loLat.Float()
		hiV, _ := hiLat.Float()
		rows = append(rows, E18Row{Strategy: strategy, HiLatency: hiV, LoLatency: loV})
		loLat.Unsubscribe()
		hiLat.Unsubscribe()
		sc.Close()
	}
	return rows
}

// E18Table renders the QoS comparison.
func E18Table(rows []E18Row) *Table {
	t := &Table{
		Title:  "E18 — QoS-priority scheduling on query-level metadata",
		Note:   "the qos scheduler reads sink qosPriority items: the important query is served near-immediately under overload",
		Header: []string{"strategy", "hi-priority latency", "lo-priority latency"},
	}
	for _, r := range rows {
		t.Add(r.Strategy, r.HiLatency, r.LoLatency)
	}
	return t
}
