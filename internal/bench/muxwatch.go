package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/watch"
)

// E25SSEConnCap bounds the per-watch SSE ablation: beyond this many
// watches the legacy path is skipped (each watch is its own TCP
// connection and goroutine pair, and the point of E25 is that this
// does not scale), while the mux rows keep going — 10k watches still
// ride one connection.
const E25SSEConnCap = 2000

// E25Row is one (mode, watches) cell of the mux transport experiment.
type E25Row struct {
	// Mode is "mux" (one session, batched binary frames) or "sse"
	// (ablation: the legacy per-watch SSE stream, one connection per
	// watch).
	Mode string
	// Watches is the number of concurrent watches on the published
	// item.
	Watches int
	// Conns is the TCP connections the transport used: always 1 for
	// mux, Watches for sse.
	Conns int
	// Publishes is the timed publication burst length.
	Publishes int
	// Delivered counts events received client-side — fewer than
	// Watches*Publishes when coalesce-to-latest merged versions.
	Delivered int64
	// Frames is the binary frames the mux stream carried (0 for sse,
	// where every event is its own HTTP flush).
	Frames int64
	// EventsPerFrame is Delivered/Frames — the write amortization the
	// batched framing buys (1 event : 1 write for sse, by definition).
	EventsPerFrame float64
	// NsPerEvent is wall time per delivered event from burst start
	// until every watch has seen the final version — the end-to-end
	// serve cost of one event on this transport.
	NsPerEvent int64
}

// RunE25Mode times a burst of publishes publications of one item
// fanned out to watches subscribers over the given transport. Setup
// (connections, watch registration) is excluded from the window; the
// window closes when every watch has observed the final version, so
// coalescing shortens it rather than hiding work.
func RunE25Mode(mode string, watches, publishes int) E25Row {
	env, r, publish := E23System()
	h := watch.NewHub(env)
	defer h.Close()
	srv := watch.NewServer(h, env, r)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := watch.NewClient(ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	row := E25Row{Mode: mode, Watches: watches, Publishes: publishes}
	final := uint64(publishes + 1) // inclusion published v1
	switch mode {
	case "mux":
		m, err := c.Mux(ctx)
		if err != nil {
			panic(err)
		}
		defer m.Close()
		adds := make(map[uint64]watch.MuxWatch, watches)
		for i := 0; i < watches; i++ {
			// Since: 1 skips the catch-up snapshot so the window times
			// only burst deliveries.
			adds[uint64(i+1)] = watch.MuxWatch{Registry: "op", Kind: "val", Since: 1}
		}
		if rejects, err := m.Add(ctx, adds); err != nil || len(rejects) != 0 {
			panic(fmt.Sprintf("E25: mux add: %v %v", rejects, err))
		}
		start := time.Now()
		for i := 0; i < publishes; i++ {
			publish()
		}
		h.Barrier()
		// Versions are strictly increasing per watch, so each watch
		// yields the final version exactly once.
		caught := 0
		for caught < watches {
			ev, err := m.Next()
			if err != nil {
				panic(fmt.Sprintf("E25: mux next: %v", err))
			}
			row.Delivered++
			if ev.Version == final {
				caught++
			}
		}
		ns := time.Since(start).Nanoseconds()
		row.Conns = 1
		row.Frames = m.Frames()
		if row.Frames > 0 {
			row.EventsPerFrame = float64(m.Events()) / float64(row.Frames)
		}
		row.NsPerEvent = ns / maxI64(row.Delivered, 1)
	case "sse":
		streams := make([]*watch.Stream, watches)
		for i := range streams {
			st, err := c.Watch(ctx, "op", "val", 1)
			if err != nil {
				panic(fmt.Sprintf("E25: sse watch: %v", err))
			}
			streams[i] = st
			defer st.Close()
		}
		var delivered atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for _, st := range streams {
			wg.Add(1)
			go func(st *watch.Stream) {
				defer wg.Done()
				for {
					f, err := st.Next()
					if err != nil {
						panic(fmt.Sprintf("E25: sse next: %v", err))
					}
					delivered.Add(1)
					if f.Version == final {
						return
					}
				}
			}(st)
		}
		for i := 0; i < publishes; i++ {
			publish()
		}
		h.Barrier()
		wg.Wait()
		ns := time.Since(start).Nanoseconds()
		row.Conns = watches
		row.Delivered = delivered.Load()
		row.EventsPerFrame = 1 // one event per HTTP flush, by construction
		row.NsPerEvent = ns / maxI64(row.Delivered, 1)
	default:
		panic(fmt.Sprintf("E25: unknown mode %q", mode))
	}
	return row
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RunE25 runs both transports at each watch count, skipping the SSE
// ablation above E25SSEConnCap.
func RunE25(watchCounts []int, publishes int) []E25Row {
	var rows []E25Row
	for _, n := range watchCounts {
		if n <= E25SSEConnCap {
			rows = append(rows, RunE25Mode("sse", n, publishes))
		}
		rows = append(rows, RunE25Mode("mux", n, publishes))
	}
	return rows
}

// E25Table renders the transport comparison.
func E25Table(rows []E25Row) *Table {
	t := &Table{
		Title:  "E25 — mux watch transport: one connection vs per-watch SSE",
		Note:   fmt.Sprintf("one item, N watches, a publication burst, timed until every watch sees the final version. The legacy path pays one TCP connection and one HTTP flush per watch per event; the mux session carries every watch on one connection and packs events into CRC-framed binary batches, so conns stays 1 and events/frame amortizes the write cost (SSE ablation skipped above %d watches)", E25SSEConnCap),
		Header: []string{"mode", "watches", "conns", "publishes", "delivered", "frames", "events/frame", "ns/event"},
	}
	for _, r := range rows {
		t.Add(r.Mode, r.Watches, r.Conns, r.Publishes, r.Delivered, r.Frames, r.EventsPerFrame, r.NsPerEvent)
	}
	return t
}
