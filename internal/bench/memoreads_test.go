package bench

import (
	"strings"
	"testing"
)

func TestE20MemoizedVsRecompute(t *testing.T) {
	elapsed := func(fn func()) int64 { fn(); return 1 }
	rows := RunE20(4, 500, 3, elapsed)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	recompute, memoized := rows[0], rows[1]
	if recompute.Mode != "recompute" || memoized.Mode != "memoized" {
		t.Fatalf("modes = %q, %q", recompute.Mode, memoized.Mode)
	}
	// Recompute-per-access: every read computes.
	if recompute.ComputesPerKiloRead != 1000 {
		t.Fatalf("recompute computes/1k = %v, want 1000", recompute.ComputesPerKiloRead)
	}
	if recompute.MemoHitRate != 0 {
		t.Fatalf("recompute memo hit rate = %v, want 0", recompute.MemoHitRate)
	}
	// Memoized steady state: the warm-up read stamped the memo, so the
	// timed reads compute nothing and hit every time.
	if memoized.ComputesPerKiloRead != 0 {
		t.Fatalf("memoized computes/1k = %v, want 0", memoized.ComputesPerKiloRead)
	}
	if memoized.MemoHitRate != 1 {
		t.Fatalf("memoized memo hit rate = %v, want 1", memoized.MemoHitRate)
	}

	var b strings.Builder
	E20Table(rows).Fprint(&b)
	for _, want := range []string{"memoized", "recompute", "E20"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, b.String())
		}
	}
}
