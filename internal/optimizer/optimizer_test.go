package optimizer

import (
	"math"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
)

var intSchema = stream.Schema{Name: "ints", Fields: []stream.Field{{Name: "v", Type: "int"}}}

// filterChainPlan builds src -> f1 -> f2 -> sink where f1 is costly
// and barely selective (the wrong slot) and f2 cheap and highly
// selective.
func filterChainPlan() (*engine.Engine, *clock.Virtual, *ops.Filter, *ops.Filter, *core.Env) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	src := ops.NewSource(g, "src", intSchema, 1, 100)
	f1 := ops.NewFilter(g, "f1", intSchema, func(tp stream.Tuple) bool { return tp[0].(int)%10 != 0 }, 100) // sel 0.9
	f1.SetCostPerElement(10)
	f2 := ops.NewFilter(g, "f2", intSchema, func(tp stream.Tuple) bool { return tp[0].(int)%10 == 1 }, 100) // sel ~0.1
	f2.SetCostPerElement(1)
	sink := ops.NewSink(g, "sink", intSchema, nil, 0, 0, 100)
	g.Connect(src, f1)
	g.Connect(f1, f2)
	g.Connect(f2, sink)
	e := engine.New(g, vc)
	e.Bind(src, stream.NewConstantRate(0, 1, 0))
	return e, vc, f1, f2, g.Env()
}

func TestFilterChainNeedsTwoFilters(t *testing.T) {
	if _, err := NewFilterChain(); err == nil {
		t.Fatal("accepted empty chain")
	}
}

func TestFilterChainRanks(t *testing.T) {
	e, _, f1, f2, _ := filterChainPlan()
	chain, err := NewFilterChain(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Close()
	e.RunUntil(1000) // measure selectivities
	ranks := chain.Ranks()
	// rank(f1) = 10/(1-0.9) = 100; rank(f2) = 1/(1-0.1) ≈ 1.1
	if !(ranks[0] > ranks[1]) {
		t.Fatalf("ranks = %v, want slot 0 ranked worse", ranks)
	}
	if math.Abs(ranks[0]-100) > 5 {
		t.Fatalf("rank[0] = %v, want ~100", ranks[0])
	}
}

func TestFilterChainOptimizeSwapsAndReducesCPU(t *testing.T) {
	e, vc, f1, f2, env := filterChainPlan()
	chain, err := NewFilterChain(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Close()

	cpu1, _ := f1.Registry().Subscribe(ops.KindMeasuredCPU)
	defer cpu1.Unsubscribe()
	cpu2, _ := f2.Registry().Subscribe(ops.KindMeasuredCPU)
	defer cpu2.Unsubscribe()
	_ = env

	e.RunUntil(1000)
	a1, _ := cpu1.Float()
	a2, _ := cpu2.Float()
	before := a1 + a2 // expected ~ 1*10 + 0.9*1 = 10.9

	if !chain.Optimize() {
		t.Fatal("Optimize did not reorder")
	}
	if chain.Optimize() {
		t.Fatal("second Optimize reordered again immediately")
	}
	if chain.Reorders() != 1 {
		t.Fatalf("Reorders = %d, want 1", chain.Reorders())
	}

	vc.Advance(2000) // let measurements re-converge
	b1, _ := cpu1.Float()
	b2, _ := cpu2.Float()
	after := b1 + b2 // expected ~ 1*1 + 0.1*10 = 2

	if after >= before/3 {
		t.Fatalf("reordering did not pay off: CPU %v -> %v (want ~5x reduction)", before, after)
	}
}

func TestFilterChainPreservesResults(t *testing.T) {
	// The same stream through the original and the optimized order
	// must deliver identical results.
	run := func(optimize bool) []int {
		vc := clock.NewVirtual()
		g := graph.New(core.NewEnv(vc))
		src := ops.NewSource(g, "src", intSchema, 1, 100)
		f1 := ops.NewFilter(g, "f1", intSchema, func(tp stream.Tuple) bool { return tp[0].(int)%3 != 0 }, 100)
		f1.SetCostPerElement(10)
		f2 := ops.NewFilter(g, "f2", intSchema, func(tp stream.Tuple) bool { return tp[0].(int)%5 == 0 }, 100)
		var got []int
		sink := ops.NewSink(g, "sink", intSchema, func(el stream.Element) {
			got = append(got, el.Tuple[0].(int))
		}, 0, 0, 100)
		g.Connect(src, f1)
		g.Connect(f1, f2)
		g.Connect(f2, sink)
		e := engine.New(g, vc)
		e.Bind(src, stream.NewConstantRate(0, 1, 0))
		e.RunUntil(500)
		if optimize {
			chain, err := NewFilterChain(f1, f2)
			if err != nil {
				t.Fatal(err)
			}
			defer chain.Close()
			chain.Optimize()
		}
		e.RunUntil(1500)
		return got
	}
	plain := run(false)
	opt := run(true)
	if len(plain) == 0 || len(plain) != len(opt) {
		t.Fatalf("result sizes differ: %d vs %d", len(plain), len(opt))
	}
	for i := range plain {
		if plain[i] != opt[i] {
			t.Fatalf("results diverge at %d: %d vs %d", i, plain[i], opt[i])
		}
	}
}

func TestFilterChainAutoOptimize(t *testing.T) {
	e, vc, f1, f2, env := filterChainPlan()
	chain, err := NewFilterChain(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	defer chain.Close()
	chain.AutoOptimize(env, 500)
	e.RunUntil(2000)
	_ = vc
	if chain.Reorders() == 0 {
		t.Fatal("auto-optimizer never reordered")
	}
}

func TestJoinOrderAdvisorRecommendsCheapest(t *testing.T) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	mkRate := func(name string, v float64) (*core.Registry, *core.Subscription) {
		r := env.NewRegistry(name)
		val := v
		r.MustDefine(&core.Definition{
			Kind:   "estOutputRate",
			Events: []string{"rateChanged"},
			Build: func(*core.BuildContext) (core.Handler, error) {
				return core.NewTriggered(func(clock.Time) (core.Value, error) { return val, nil }), nil
			},
		})
		sub, err := r.Subscribe("estOutputRate")
		if err != nil {
			t.Fatal(err)
		}
		return r, sub
	}
	_, ra := mkRate("A", 0.1)
	_, rb := mkRate("B", 0.1)
	_, rc := mkRate("C", 1.0)
	defer ra.Unsubscribe()
	defer rb.Unsubscribe()
	defer rc.Unsubscribe()

	adv := NewJoinOrderAdvisor(
		JoinInput{Name: "A", Rate: ra, Validity: 100},
		JoinInput{Name: "B", Rate: rb, Validity: 100},
		JoinInput{Name: "C", Rate: rc, Validity: 100},
		0.05, 1,
	)
	recs, err := adv.Recommend()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("recommendations = %d, want 3", len(recs))
	}
	// With C ten times faster, joining the two slow streams first is
	// cheapest.
	if recs[0].Pair != [2]int{0, 1} {
		t.Fatalf("best ordering = %v (%s), want A⋈B first", recs[0].Pair, recs[0].Description)
	}
	for i := 1; i < 3; i++ {
		if recs[i].EstCPU < recs[i-1].EstCPU {
			t.Fatal("recommendations not sorted by cost")
		}
	}
}

// TestJoinOrderAdvisorFlipsWithRates: when a stream's rate changes at
// runtime, the recommendation flips — the re-optimization trigger of
// Section 1.
func TestJoinOrderAdvisorFlipsWithRates(t *testing.T) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	rateB := 0.1
	regB := env.NewRegistry("B")
	regB.MustDefine(&core.Definition{
		Kind:   "estOutputRate",
		Events: []string{"rateChanged"},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) { return rateB, nil }), nil
		},
	})
	mkStatic := func(name string, v float64) *core.Subscription {
		r := env.NewRegistry(name)
		r.MustDefine(&core.Definition{
			Kind:  "estOutputRate",
			Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(v), nil },
		})
		sub, err := r.Subscribe("estOutputRate")
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}
	ra := mkStatic("A", 0.1)
	defer ra.Unsubscribe()
	rb, err := regB.Subscribe("estOutputRate")
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Unsubscribe()
	rc := mkStatic("C", 0.5)
	defer rc.Unsubscribe()

	adv := NewJoinOrderAdvisor(
		JoinInput{Name: "A", Rate: ra, Validity: 100},
		JoinInput{Name: "B", Rate: rb, Validity: 100},
		JoinInput{Name: "C", Rate: rc, Validity: 100},
		0.05, 1,
	)
	recs, _ := adv.Recommend()
	if recs[0].Pair != [2]int{0, 1} {
		t.Fatalf("initial best = %s, want (A ⋈ B) ⋈ C", recs[0].Description)
	}

	// B's rate spikes: now A and C are the slow pair.
	rateB = 5
	regB.FireEvent("rateChanged")
	recs, _ = adv.Recommend()
	if recs[0].Pair != [2]int{0, 2} {
		t.Fatalf("after rate change best = %s, want (A ⋈ C) ⋈ B", recs[0].Description)
	}
}

func TestJoinOrderAdvisorErrorsOnDeadSubscription(t *testing.T) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	r := env.NewRegistry("A")
	r.MustDefine(&core.Definition{
		Kind:  "estOutputRate",
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(0.1), nil },
	})
	sub, _ := r.Subscribe("estOutputRate")
	sub.Unsubscribe()
	adv := NewJoinOrderAdvisor(
		JoinInput{Name: "A", Rate: sub, Validity: 100},
		JoinInput{Name: "B", Rate: sub, Validity: 100},
		JoinInput{Name: "C", Rate: sub, Validity: 100},
		0.05, 1,
	)
	if _, err := adv.Recommend(); err == nil {
		t.Fatal("Recommend succeeded on a released subscription")
	}
}
