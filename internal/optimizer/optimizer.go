// Package optimizer implements the paper's third motivating
// application: runtime query (re-)optimization driven by dynamic
// metadata. "Changes in stream characteristics, such as stream rates
// or value distributions, may necessitate re-optimizations at runtime"
// (Section 1) — and any such optimization "needs runtime statistics as
// a form of metadata" (Section 5).
//
// Two consumers are provided:
//
//   - FilterChain reorders the commuting predicates of a filter chain
//     by the classical rank criterion cost/(1-selectivity), using the
//     live selectivity metadata of each slot;
//   - JoinOrderAdvisor scores the possible join orders of a
//     multi-stream sliding-window join with the Figure 3 cost model,
//     fed by estimated-rate metadata, and recommends the cheapest
//     (the rate-based optimization of [22] / plan-migration trigger of
//     [25, 18]).
package optimizer

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/stream"
)

// predicate bundles a filter predicate with its simulated cost.
type predicate struct {
	pred func(stream.Tuple) bool
	cost int64
}

// FilterChain adaptively reorders the predicates of adjacent filters.
// The filters must form a chain whose predicates commute (conjunctive
// filtering), so exchanging the predicates between slots preserves the
// query result while changing the cost.
type FilterChain struct {
	mu       sync.Mutex
	filters  []*ops.Filter
	sels     []*core.Subscription
	reorders int
	ticker   *clock.Ticker
}

// NewFilterChain subscribes to the selectivity metadata of every
// filter in the chain. At least two filters are required.
func NewFilterChain(filters ...*ops.Filter) (*FilterChain, error) {
	if len(filters) < 2 {
		return nil, errors.New("optimizer: a filter chain needs at least two filters")
	}
	c := &FilterChain{filters: filters}
	for _, f := range filters {
		sub, err := f.Registry().Subscribe(ops.KindSelectivity)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("optimizer: subscribing selectivity of %s: %w", f.Name(), err)
		}
		c.sels = append(c.sels, sub)
	}
	return c, nil
}

// Ranks returns the current rank cost/(1-selectivity) of the predicate
// in each slot; predicates should run in ascending rank order. A
// selectivity of 1 yields +Inf (the predicate filters nothing and
// belongs last).
func (c *FilterChain) Ranks() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ranksLocked()
}

func (c *FilterChain) ranksLocked() []float64 {
	ranks := make([]float64, len(c.filters))
	for i, f := range c.filters {
		sel, err := c.sels[i].Float()
		if err != nil || sel >= 1 {
			ranks[i] = math.Inf(1)
			continue
		}
		ranks[i] = float64(f.CostPerElement()) / (1 - sel)
	}
	return ranks
}

// Optimize reorders the predicates into ascending rank order and
// reports whether the order changed. The measured selectivities of the
// slots re-converge over the following update windows.
func (c *FilterChain) Optimize() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ranks := c.ranksLocked()
	order := make([]int, len(ranks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ranks[order[a]] < ranks[order[b]] })

	changed := false
	for i, src := range order {
		if src != i {
			changed = true
			break
		}
	}
	if !changed {
		return false
	}
	preds := make([]predicate, len(c.filters))
	for i, src := range order {
		preds[i] = predicate{pred: c.filters[src].Predicate(), cost: c.filters[src].CostPerElement()}
	}
	for i, p := range preds {
		c.filters[i].SetPredicate(p.pred, p.cost)
	}
	c.reorders++
	return true
}

// AutoOptimize runs Optimize every period time units until Close.
func (c *FilterChain) AutoOptimize(env *core.Env, period clock.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ticker != nil {
		c.ticker.Stop()
	}
	c.ticker = clock.NewTicker(env.Clock(), period, func(clock.Time) { c.Optimize() })
}

// Reorders returns how many Optimize calls changed the order.
func (c *FilterChain) Reorders() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reorders
}

// Close stops auto-optimization and releases the metadata
// subscriptions.
func (c *FilterChain) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ticker != nil {
		c.ticker.Stop()
		c.ticker = nil
	}
	for _, s := range c.sels {
		if s != nil {
			s.Unsubscribe()
		}
	}
	c.sels = nil
}

// JoinInput describes one stream entering a multi-way sliding-window
// join for ordering purposes.
type JoinInput struct {
	// Name labels the input in recommendations.
	Name string
	// Rate is a subscription to the input's estimated output rate.
	Rate *core.Subscription
	// Validity is the window size applied to the input.
	Validity float64
}

// Ordering is one evaluated join order.
type Ordering struct {
	// Pair holds the indices of the two inputs joined first.
	Pair [2]int
	// Description renders the plan, e.g. "(A ⋈ B) ⋈ C".
	Description string
	// EstCPU is the cost-model estimate of the plan's CPU usage.
	EstCPU float64
}

// JoinOrderAdvisor scores the three possible orders of a three-way
// sliding-window join using the Figure 3 cost model and live
// estimated-rate metadata.
type JoinOrderAdvisor struct {
	inputs [3]JoinInput
	// MatchProbability is the estimated probability that a pair of
	// elements satisfies the join predicate (calibrates the
	// intermediate result rate).
	MatchProbability float64
	// PredicateCost is the simulated per-comparison cost.
	PredicateCost float64
}

// NewJoinOrderAdvisor creates an advisor over exactly three inputs.
func NewJoinOrderAdvisor(a, b, c JoinInput, matchP, predCost float64) *JoinOrderAdvisor {
	return &JoinOrderAdvisor{
		inputs:           [3]JoinInput{a, b, c},
		MatchProbability: matchP,
		PredicateCost:    predCost,
	}
}

// pairCost returns the Figure 3 CPU estimate of joining inputs with
// rates r1, r2 and validities v1, v2, plus the rate and validity of
// the intermediate result.
func (a *JoinOrderAdvisor) pairCost(r1, v1, r2, v2 float64) (cost, outRate, outValidity float64) {
	cost = r1*r2*(v1+v2)*a.PredicateCost + r1 + r2
	outRate = r1 * r2 * (v1 + v2) * a.MatchProbability
	// A join result is valid on the intersection of its parents'
	// validities; with uniform arrival phases the expectation is
	// bounded by the smaller validity. The advisor uses that bound —
	// consistent across plans, which is all a ranking needs.
	outValidity = math.Min(v1, v2)
	return
}

// Recommend evaluates the three left-deep orderings and returns them
// sorted by estimated CPU usage, cheapest first.
func (a *JoinOrderAdvisor) Recommend() ([]Ordering, error) {
	var rates [3]float64
	for i, in := range a.inputs {
		v, err := in.Rate.Float()
		if err != nil {
			return nil, fmt.Errorf("optimizer: rate of %s: %w", in.Name, err)
		}
		rates[i] = v
	}
	pairs := [3][2]int{{0, 1}, {0, 2}, {1, 2}}
	var out []Ordering
	for _, p := range pairs {
		i, j := p[0], p[1]
		k := 3 - i - j
		c1, rij, vij := a.pairCost(rates[i], a.inputs[i].Validity, rates[j], a.inputs[j].Validity)
		c2, _, _ := a.pairCost(rij, vij, rates[k], a.inputs[k].Validity)
		out = append(out, Ordering{
			Pair:        p,
			Description: fmt.Sprintf("(%s ⋈ %s) ⋈ %s", a.inputs[i].Name, a.inputs[j].Name, a.inputs[k].Name),
			EstCPU:      c1 + c2,
		})
	}
	sort.Slice(out, func(x, y int) bool { return out[x].EstCPU < out[y].EstCPU })
	return out, nil
}
