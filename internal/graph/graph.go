// Package graph implements the query graph of the stream processing
// system (Figure 1): sources at the bottom provide raw data streams,
// intermediate operator nodes process them, and sinks at the top
// connect queries to applications. Metadata items and handlers are
// stored at the individual graph nodes (Section 2.2); the graph wires
// each node's metadata registry to its neighbors so that inter-node
// dependencies resolve against the live topology.
//
// The graph supports subquery sharing: an output of any node may feed
// several downstream nodes.
package graph

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/stream"
)

// NodeType classifies graph nodes.
type NodeType int

// Node types.
const (
	// SourceNode provides a raw data stream.
	SourceNode NodeType = iota
	// OperatorNode processes data streams.
	OperatorNode
	// SinkNode delivers query results to an application.
	SinkNode
)

// String returns the node type name.
func (t NodeType) String() string {
	switch t {
	case SourceNode:
		return "source"
	case OperatorNode:
		return "operator"
	case SinkNode:
		return "sink"
	default:
		return fmt.Sprintf("nodetype(%d)", int(t))
	}
}

// Node is a query graph node. Concrete nodes embed Base.
type Node interface {
	// ID is the node's graph-unique identifier.
	ID() int
	// Name is the node's human-readable name.
	Name() string
	// Type classifies the node.
	Type() NodeType
	// Registry is the node's metadata registry.
	Registry() *core.Registry
	// Process handles one input element arriving on the given input
	// port and returns the output elements. Sources are not driven
	// through Process.
	Process(el stream.Element, port int) []stream.Element
}

// Graph is a query graph: nodes plus directed edges from producers to
// consumers.
type Graph struct {
	env *core.Env

	mu    sync.RWMutex
	nodes []Node
	ins   map[int][]Node // consumer id -> producers, in port order
	outs  map[int][]Node // producer id -> consumers
}

// New returns an empty query graph over the environment.
func New(env *core.Env) *Graph {
	return &Graph{
		env:  env,
		ins:  make(map[int][]Node),
		outs: make(map[int][]Node),
	}
}

// Env returns the graph's metadata environment.
func (g *Graph) Env() *core.Env { return g.env }

// NewBase allocates a node core with a registry wired to the graph
// topology. Concrete node constructors embed the returned Base and
// then call Register.
func (g *Graph) NewBase(name string, typ NodeType) *Base {
	g.mu.Lock()
	id := len(g.nodes)
	g.nodes = append(g.nodes, nil) // reserved; Register fills it in
	g.mu.Unlock()

	reg := g.env.NewRegistry(fmt.Sprintf("%s#%d", name, id))
	b := &Base{graph: g, id: id, name: name, typ: typ, reg: reg}
	reg.SetNeighbors(
		func() []*core.Registry { return g.registriesOf(g.Inputs(b)) },
		func() []*core.Registry { return g.registriesOf(g.Outputs(b)) },
	)
	return b
}

// Register installs the concrete node for its base. It must be called
// exactly once per NewBase, before the node is connected.
func (g *Graph) Register(n Node) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.nodes[n.ID()] != nil {
		panic(fmt.Sprintf("graph: node %d registered twice", n.ID()))
	}
	g.nodes[n.ID()] = n
}

// Connect adds an edge from producer to consumer. The consumer's input
// port is the number of edges already entering it; the order of
// Connect calls therefore defines port numbering.
func (g *Graph) Connect(from, to Node) {
	if from.Type() == SinkNode {
		panic("graph: sink cannot be a producer")
	}
	if to.Type() == SourceNode {
		panic("graph: source cannot be a consumer")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.outs[from.ID()] = append(g.outs[from.ID()], to)
	g.ins[to.ID()] = append(g.ins[to.ID()], from)
}

// Inputs returns the producers feeding n, in port order.
func (g *Graph) Inputs(n Node) []Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Node, len(g.ins[n.ID()]))
	copy(out, g.ins[n.ID()])
	return out
}

// Outputs returns the consumers fed by n.
func (g *Graph) Outputs(n Node) []Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Node, len(g.outs[n.ID()]))
	copy(out, g.outs[n.ID()])
	return out
}

// InputPort returns the port index of producer from at consumer to,
// or -1.
func (g *Graph) InputPort(from, to Node) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for i, p := range g.ins[to.ID()] {
		if p.ID() == from.ID() {
			return i
		}
	}
	return -1
}

// Nodes returns all registered nodes in id order.
func (g *Graph) Nodes() []Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		if n != nil {
			out = append(out, n)
		}
	}
	return out
}

// Sources returns all source nodes.
func (g *Graph) Sources() []Node { return g.byType(SourceNode) }

// Sinks returns all sink nodes.
func (g *Graph) Sinks() []Node { return g.byType(SinkNode) }

// Operators returns all operator nodes.
func (g *Graph) Operators() []Node { return g.byType(OperatorNode) }

func (g *Graph) byType(t NodeType) []Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Node
	for _, n := range g.nodes {
		if n != nil && n.Type() == t {
			out = append(out, n)
		}
	}
	return out
}

// Topological returns the nodes in a topological order (producers
// before consumers). It panics on a cyclic graph; query graphs are
// DAGs by construction.
func (g *Graph) Topological() []Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	indeg := make(map[int]int)
	for _, n := range g.nodes {
		if n != nil {
			indeg[n.ID()] = len(g.ins[n.ID()])
		}
	}
	var ready []Node
	for _, n := range g.nodes {
		if n != nil && indeg[n.ID()] == 0 {
			ready = append(ready, n)
		}
	}
	var order []Node
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		for _, c := range g.outs[n.ID()] {
			indeg[c.ID()]--
			if indeg[c.ID()] == 0 {
				ready = append(ready, c)
			}
		}
	}
	if len(order) != len(indeg) {
		panic("graph: cycle in query graph")
	}
	return order
}

// Downstream returns every node reachable from n (excluding n).
func (g *Graph) Downstream(n Node) []Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[int]bool)
	var out []Node
	var visit func(m Node)
	visit = func(m Node) {
		for _, c := range g.outs[m.ID()] {
			if !seen[c.ID()] {
				seen[c.ID()] = true
				out = append(out, c)
				visit(c)
			}
		}
	}
	visit(n)
	return out
}

// Upstream returns every node n transitively reads from (excluding n).
func (g *Graph) Upstream(n Node) []Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[int]bool)
	var out []Node
	var visit func(m Node)
	visit = func(m Node) {
		for _, p := range g.ins[m.ID()] {
			if !seen[p.ID()] {
				seen[p.ID()] = true
				out = append(out, p)
				visit(p)
			}
		}
	}
	visit(n)
	return out
}

// registriesOf maps nodes to their registries.
func (g *Graph) registriesOf(nodes []Node) []*core.Registry {
	regs := make([]*core.Registry, len(nodes))
	for i, n := range nodes {
		regs[i] = n.Registry()
	}
	return regs
}

// Base carries the common state of every node and implements the
// boilerplate of the Node interface. Concrete nodes embed it.
type Base struct {
	graph *Graph
	id    int
	name  string
	typ   NodeType
	reg   *core.Registry
}

// ID implements Node.
func (b *Base) ID() int { return b.id }

// Name implements Node.
func (b *Base) Name() string { return b.name }

// Type implements Node.
func (b *Base) Type() NodeType { return b.typ }

// Registry implements Node.
func (b *Base) Registry() *core.Registry { return b.reg }

// Graph returns the owning graph.
func (b *Base) Graph() *Graph { return b.graph }

// Process implements Node with a panic; sources and sinks that never
// receive elements rely on it, operators override it.
func (b *Base) Process(el stream.Element, port int) []stream.Element {
	panic(fmt.Sprintf("graph: node %s does not process elements", b.name))
}
