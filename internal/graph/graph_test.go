package graph

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/stream"
)

// testNode is a minimal concrete node for graph tests.
type testNode struct {
	*Base
}

func (n *testNode) Process(el stream.Element, port int) []stream.Element {
	return []stream.Element{el}
}

func newTestGraph() *Graph {
	return New(core.NewEnv(clock.NewVirtual()))
}

func addNode(g *Graph, name string, typ NodeType) *testNode {
	n := &testNode{Base: g.NewBase(name, typ)}
	g.Register(n)
	return n
}

func TestNodeIdentity(t *testing.T) {
	g := newTestGraph()
	a := addNode(g, "src", SourceNode)
	b := addNode(g, "op", OperatorNode)
	if a.ID() == b.ID() {
		t.Fatal("node ids not unique")
	}
	if a.Name() != "src" || a.Type() != SourceNode {
		t.Fatal("base accessors wrong")
	}
	if a.Registry() == nil || a.Registry() == b.Registry() {
		t.Fatal("registries missing or shared")
	}
	if a.Graph() != g {
		t.Fatal("graph backref wrong")
	}
}

func TestRegisterTwicePanics(t *testing.T) {
	g := newTestGraph()
	n := addNode(g, "x", OperatorNode)
	defer func() {
		if recover() == nil {
			t.Fatal("double Register did not panic")
		}
	}()
	g.Register(n)
}

func TestConnectAndPorts(t *testing.T) {
	g := newTestGraph()
	s1 := addNode(g, "s1", SourceNode)
	s2 := addNode(g, "s2", SourceNode)
	j := addNode(g, "join", OperatorNode)
	k := addNode(g, "sink", SinkNode)
	g.Connect(s1, j)
	g.Connect(s2, j)
	g.Connect(j, k)

	ins := g.Inputs(j)
	if len(ins) != 2 || ins[0].ID() != s1.ID() || ins[1].ID() != s2.ID() {
		t.Fatalf("Inputs = %v (port order must follow Connect order)", ins)
	}
	if got := g.InputPort(s2, j); got != 1 {
		t.Fatalf("InputPort(s2, j) = %d, want 1", got)
	}
	if got := g.InputPort(k, j); got != -1 {
		t.Fatalf("InputPort(non-producer) = %d, want -1", got)
	}
	if outs := g.Outputs(j); len(outs) != 1 || outs[0].ID() != k.ID() {
		t.Fatalf("Outputs = %v", outs)
	}
}

func TestConnectInvalidEndpointsPanic(t *testing.T) {
	g := newTestGraph()
	src := addNode(g, "s", SourceNode)
	sink := addNode(g, "k", SinkNode)
	op := addNode(g, "o", OperatorNode)
	for _, c := range []struct{ from, to Node }{
		{sink, op}, // sink as producer
		{op, src},  // source as consumer
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid Connect did not panic")
				}
			}()
			g.Connect(c.from, c.to)
		}()
	}
}

func TestSubquerySharing(t *testing.T) {
	g := newTestGraph()
	s := addNode(g, "s", SourceNode)
	op := addNode(g, "shared", OperatorNode)
	k1 := addNode(g, "k1", SinkNode)
	k2 := addNode(g, "k2", SinkNode)
	g.Connect(s, op)
	g.Connect(op, k1)
	g.Connect(op, k2)
	if got := len(g.Outputs(op)); got != 2 {
		t.Fatalf("shared operator has %d consumers, want 2", got)
	}
}

func TestByTypeAccessors(t *testing.T) {
	g := newTestGraph()
	addNode(g, "s1", SourceNode)
	addNode(g, "s2", SourceNode)
	addNode(g, "o", OperatorNode)
	addNode(g, "k", SinkNode)
	if len(g.Sources()) != 2 || len(g.Operators()) != 1 || len(g.Sinks()) != 1 {
		t.Fatal("type accessors wrong")
	}
	if len(g.Nodes()) != 4 {
		t.Fatalf("Nodes = %d, want 4", len(g.Nodes()))
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := newTestGraph()
	s := addNode(g, "s", SourceNode)
	a := addNode(g, "a", OperatorNode)
	b := addNode(g, "b", OperatorNode)
	j := addNode(g, "j", OperatorNode)
	k := addNode(g, "k", SinkNode)
	g.Connect(s, a)
	g.Connect(s, b)
	g.Connect(a, j)
	g.Connect(b, j)
	g.Connect(j, k)
	order := g.Topological()
	pos := make(map[int]int)
	for i, n := range order {
		pos[n.ID()] = i
	}
	if !(pos[s.ID()] < pos[a.ID()] && pos[a.ID()] < pos[j.ID()] && pos[j.ID()] < pos[k.ID()] && pos[b.ID()] < pos[j.ID()]) {
		t.Fatalf("bad topological order: %v", order)
	}
}

func TestUpstreamDownstream(t *testing.T) {
	g := newTestGraph()
	s := addNode(g, "s", SourceNode)
	a := addNode(g, "a", OperatorNode)
	k := addNode(g, "k", SinkNode)
	g.Connect(s, a)
	g.Connect(a, k)
	up := g.Upstream(k)
	if len(up) != 2 {
		t.Fatalf("Upstream(k) = %d nodes, want 2", len(up))
	}
	down := g.Downstream(s)
	if len(down) != 2 {
		t.Fatalf("Downstream(s) = %d nodes, want 2", len(down))
	}
	if len(g.Downstream(k)) != 0 || len(g.Upstream(s)) != 0 {
		t.Fatal("terminal nodes have neighbors")
	}
}

// TestRegistryNeighborsFollowTopology checks that inter-node metadata
// dependencies resolve against the live wiring.
func TestRegistryNeighborsFollowTopology(t *testing.T) {
	g := newTestGraph()
	s := addNode(g, "s", SourceNode)
	op := addNode(g, "op", OperatorNode)
	g.Connect(s, op)

	s.Registry().MustDefine(&core.Definition{
		Kind:  "outputRate",
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(0.25), nil },
	})
	op.Registry().MustDefine(&core.Definition{
		Kind: "estInputRate",
		Deps: []core.DepRef{core.Dep(core.Input(0), "outputRate")},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			dep := ctx.Dep(0)
			return core.NewOnDemand(func(clock.Time) (core.Value, error) { return dep.Value() }), nil
		},
	})
	sub, err := op.Registry().Subscribe("estInputRate")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	if v, _ := sub.Float(); v != 0.25 {
		t.Fatalf("estInputRate = %v, want 0.25 via graph wiring", v)
	}
}

func TestBaseProcessPanics(t *testing.T) {
	g := newTestGraph()
	b := g.NewBase("raw", SinkNode)
	defer func() {
		if recover() == nil {
			t.Fatal("Base.Process did not panic")
		}
	}()
	b.Process(stream.Element{}, 0)
}

func TestNodeTypeString(t *testing.T) {
	if SourceNode.String() != "source" || OperatorNode.String() != "operator" || SinkNode.String() != "sink" {
		t.Fatal("NodeType strings wrong")
	}
	if NodeType(9).String() != "nodetype(9)" {
		t.Fatal("unknown NodeType string wrong")
	}
}
