package clock

import "sync"

// Task is a unit of deferred work managed by a Scheduler. A Task is
// armed for at most one deadline at a time; when that deadline is
// reached the scheduler hands it (together with every other task due at
// the same instant) to the dispatch callback. Tasks carry an opaque
// Data pointer so callers can map them back to their own state without
// an extra allocation per fire.
type Task struct {
	// Data is caller-owned and never touched by the scheduler.
	Data any

	bucket   *bucket // bucket the task is currently armed in, nil if idle
	canceled bool
}

// Scheduler is a deadline scheduler that coalesces tasks due at the
// same instant into a single clock event ("bucket"). With N tasks
// sharing a deadline the underlying clock sees one heap push per
// boundary instead of N, and the dispatch callback receives all N tasks
// in one call, in the order they were armed.
//
// Arm order is the tie-break contract: tasks armed earlier for a given
// deadline are delivered earlier in the dispatch slice, and buckets
// occupy the clock's event queue in creation order, so same-instant
// ordering matches what per-task Schedule calls issued at the same
// moments would have produced.
//
// Scheduler is safe for concurrent use. The dispatch callback runs on
// the clock's callback goroutine (the advancing goroutine for Virtual,
// a timer goroutine for Real) with no scheduler lock held; it may arm,
// re-arm, and cancel tasks freely. The slice passed to dispatch is
// reused and must not be retained after the call returns.
type Scheduler struct {
	c        Clock
	reuser   eventReuser // non-nil when c can recycle fired events
	dispatch func(now Time, due []*Task)

	mu      sync.Mutex
	buckets map[Time]*bucket
	free    *bucket // single-slot recycle list for bucket+slice reuse
}

// bucket collects every task armed for one deadline behind one clock
// event.
type bucket struct {
	s     *Scheduler
	when  Time
	tasks []*Task
	ev    *Event
	// fireFn is the bound b.fire method value, created once per bucket
	// lifetime so (re)scheduling does not allocate a closure.
	fireFn func(now Time)
	next   *bucket // free-list link
}

// NewScheduler returns a scheduler over c that delivers due tasks to
// dispatch. dispatch must be non-nil.
func NewScheduler(c Clock, dispatch func(now Time, due []*Task)) *Scheduler {
	if dispatch == nil {
		panic("clock: scheduler dispatch must be non-nil")
	}
	s := &Scheduler{c: c, dispatch: dispatch, buckets: make(map[Time]*bucket)}
	s.reuser, _ = c.(eventReuser)
	return s
}

// At arms t to fire at deadline when. The task joins the bucket for
// that instant, creating it (and its single clock event) if this is the
// first task due then. It panics if t is already armed — a task has at
// most one pending deadline — and is a no-op for canceled tasks, so a
// dispatch loop may blindly re-arm tasks that a concurrent Cancel is
// retiring.
func (s *Scheduler) At(when Time, t *Task) {
	s.mu.Lock()
	if t.canceled {
		s.mu.Unlock()
		return
	}
	if t.bucket != nil {
		s.mu.Unlock()
		panic("clock: task armed twice")
	}
	b := s.buckets[when]
	if b == nil {
		b = s.newBucketLocked(when)
		s.buckets[when] = b
		// One event per bucket regardless of how many tasks join it.
		if s.reuser != nil {
			b.ev = s.reuser.reuseAfter(b.ev, when.Sub(s.c.Now()), b.fireFn)
		} else {
			b.ev = s.c.Schedule(when, b.fireFn)
		}
	}
	b.tasks = append(b.tasks, t)
	t.bucket = b
	s.mu.Unlock()
}

// newBucketLocked returns a bucket for deadline when, recycling a
// previously fired one (including its task-slice backing array and its
// clock event, when the clock supports reuse) if available.
func (s *Scheduler) newBucketLocked(when Time) *bucket {
	b := s.free
	if b != nil {
		s.free = b.next
		b.next = nil
		b.when = when
		return b
	}
	b = &bucket{s: s, when: when}
	b.fireFn = b.fire
	return b
}

// Cancel permanently retires t: if armed it is withdrawn from its
// bucket, and any future At is a no-op. It reports whether the task was
// armed. Scheduling the same logical work again requires a new Task.
func (s *Scheduler) Cancel(t *Task) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.canceled {
		return false
	}
	t.canceled = true
	b := t.bucket
	if b == nil {
		return false
	}
	t.bucket = nil
	for i, bt := range b.tasks {
		if bt == t {
			copy(b.tasks[i:], b.tasks[i+1:])
			b.tasks[len(b.tasks)-1] = nil
			b.tasks = b.tasks[:len(b.tasks)-1]
			break
		}
	}
	if len(b.tasks) == 0 && s.buckets[b.when] == b {
		if s.c.Cancel(b.ev) {
			delete(s.buckets, b.when)
			// The canceled event cannot be recycled (reviving a canceled
			// handle would let a stale Cancel kill the new incarnation).
			b.ev = nil
			s.recycleLocked(b)
		}
		// When the clock reports the event as already fired, b.fire is
		// in flight (blocked on s.mu). The bucket stays in the map and
		// stays owned by fire, which detaches and recycles it exactly
		// once; recycling here too would let a concurrent At hand the
		// same bucket to a new deadline that fire would then dispatch
		// at the wrong instant.
	}
	return true
}

// fire is the bucket's clock callback: detach the bucket, hand its
// tasks to dispatch, then recycle the bucket and task slice.
func (b *bucket) fire(now Time) {
	s := b.s
	s.mu.Lock()
	if s.buckets[b.when] == b {
		delete(s.buckets, b.when)
	}
	due := b.tasks
	for _, t := range due {
		t.bucket = nil
	}
	b.tasks = nil
	s.mu.Unlock()

	if len(due) > 0 {
		s.dispatch(now, due)
	}

	s.mu.Lock()
	for i := range due {
		due[i] = nil
	}
	b.tasks = due[:0]
	s.recycleLocked(b)
	s.mu.Unlock()
}

// recycleLocked returns b to the free list for reuse by a future
// bucket.
func (s *Scheduler) recycleLocked(b *bucket) {
	b.next = s.free
	s.free = b
}

// PendingBuckets returns the number of distinct deadlines currently
// armed — i.e. the number of live clock events the scheduler owns.
func (s *Scheduler) PendingBuckets() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buckets)
}

// PendingTasks returns the total number of armed tasks.
func (s *Scheduler) PendingTasks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.buckets {
		n += len(b.tasks)
	}
	return n
}
