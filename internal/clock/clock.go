// Package clock provides the time substrate for the stream processing
// system. All components observe time through the Clock interface so
// that experiments can run on a deterministic virtual clock while live
// deployments use the wall clock.
//
// Time is measured in abstract, signed 64-bit "time units". The paper's
// figures are expressed in such units (e.g. Figure 4 uses an element
// arrival every 10 time units); when running against the wall clock one
// unit is one millisecond.
package clock

// Time is a point in time, in abstract time units since an arbitrary
// epoch. Experiments usually start at time 0.
type Time int64

// Duration is a span of time in the same units as Time.
type Duration int64

// Add returns the time d units after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Clock abstracts the flow of time. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() Time

	// Schedule arranges for fn to run at time t. If t is not after
	// Now, fn runs at the next clock advancement (virtual clock) or
	// immediately (real clock). The returned Event can cancel the
	// call. fn must not block.
	Schedule(t Time, fn func(now Time)) *Event

	// After arranges for fn to run d units from now.
	After(d Duration, fn func(now Time)) *Event

	// Cancel stops a pending event, reporting whether it had not yet
	// fired.
	Cancel(e *Event) bool
}

// eventReuser is implemented by clocks that can recycle an already
// fired event when rescheduling, so steady tickers do not allocate a
// fresh Event per tick. Callers may only pass events they exclusively
// own (no other handle to e survives).
type eventReuser interface {
	reuseAfter(e *Event, d Duration, fn func(now Time)) *Event
}

// Event is a handle to a scheduled callback.
type Event struct {
	when     Time
	seq      uint64
	fn       func(Time)
	canceled bool
	index    int // heap index; -1 once fired or removed
}

// When returns the time the event is scheduled for.
func (e *Event) When() Time { return e.when }
