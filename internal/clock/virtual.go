package clock

import (
	"container/heap"
	"fmt"
	"sync"
	"sync/atomic"
)

// Virtual is a deterministic simulated clock. Time only moves when the
// owner calls Advance, AdvanceTo, or Run*; scheduled events fire in
// timestamp order (ties broken by scheduling order) on the goroutine
// that advances the clock.
//
// Virtual is safe for concurrent use, but events fire synchronously
// during Advance, so callbacks must not call Advance themselves (they
// may Schedule freely, including for the current instant).
type Virtual struct {
	mu sync.Mutex
	// now is written only under mu but read lock-free by Now(): the
	// update pipeline consults the clock position on every pooled
	// publish (lag clamping), so Now must not contend with Advance.
	now       atomic.Int64
	seq       uint64
	queue     eventQueue
	advancing bool
}

// NewVirtual returns a virtual clock positioned at time 0.
func NewVirtual() *Virtual { return &Virtual{} }

// Now returns the current simulated time.
func (v *Virtual) Now() Time { return Time(v.now.Load()) }

// Schedule implements Clock. Events scheduled for the past fire at the
// next advancement.
func (v *Virtual) Schedule(t Time, fn func(Time)) *Event {
	v.mu.Lock()
	defer v.mu.Unlock()
	e := &Event{when: t, seq: v.seq, fn: fn}
	v.seq++
	heap.Push(&v.queue, e)
	return e
}

// After implements Clock.
func (v *Virtual) After(d Duration, fn func(Time)) *Event {
	v.mu.Lock()
	defer v.mu.Unlock()
	e := &Event{when: v.Now().Add(d), seq: v.seq, fn: fn}
	v.seq++
	heap.Push(&v.queue, e)
	return e
}

// reuseAfter implements eventReuser: it re-arms e to fire d units from
// now, recycling its allocation. A nil, still-pending, or canceled e is
// replaced by a fresh event (reviving a canceled handle would make a
// stale Cancel able to kill the new incarnation).
func (v *Virtual) reuseAfter(e *Event, d Duration, fn func(Time)) *Event {
	v.mu.Lock()
	defer v.mu.Unlock()
	if e == nil || e.index >= 0 || e.canceled {
		e = &Event{}
	}
	e.when = v.Now().Add(d)
	e.seq = v.seq
	e.fn = fn
	v.seq++
	heap.Push(&v.queue, e)
	return e
}

// Cancel removes a pending event. It is a no-op if the event already
// fired. It reports whether the event was still pending.
func (v *Virtual) Cancel(e *Event) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	return true
}

// Advance moves time forward by d, firing all events scheduled in
// (now, now+d] in order. It panics if called re-entrantly from an event
// callback.
func (v *Virtual) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("clock: negative advance %d", d))
	}
	v.AdvanceTo(v.Now().Add(d))
}

// AdvanceTo moves time forward to t, firing all due events in order.
// Advancing to the past is a no-op.
func (v *Virtual) AdvanceTo(t Time) {
	v.mu.Lock()
	if v.advancing {
		v.mu.Unlock()
		panic("clock: re-entrant Advance from event callback")
	}
	v.advancing = true
	for {
		if len(v.queue) == 0 || v.queue[0].when > t {
			break
		}
		e := heap.Pop(&v.queue).(*Event)
		if e.canceled {
			continue
		}
		now := Time(v.now.Load())
		if e.when > now {
			now = e.when
			v.now.Store(int64(now))
		}
		v.mu.Unlock()
		e.fn(now)
		v.mu.Lock()
	}
	if t > Time(v.now.Load()) {
		v.now.Store(int64(t))
	}
	v.advancing = false
	v.mu.Unlock()
}

// RunUntilIdle fires every pending event regardless of its timestamp,
// moving time to the last event fired. It returns the number of events
// fired. Use it to drain a simulation to quiescence.
func (v *Virtual) RunUntilIdle() int {
	fired := 0
	for {
		v.mu.Lock()
		if v.advancing {
			v.mu.Unlock()
			panic("clock: re-entrant RunUntilIdle from event callback")
		}
		if len(v.queue) == 0 {
			v.mu.Unlock()
			return fired
		}
		next := v.queue[0].when
		v.mu.Unlock()
		v.AdvanceTo(next)
		fired++
	}
}

// PendingEvents returns the number of events not yet fired or canceled.
func (v *Virtual) PendingEvents() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, e := range v.queue {
		if !e.canceled {
			n++
		}
	}
	return n
}

// NextEventTime returns the timestamp of the earliest pending event and
// whether one exists.
func (v *Virtual) NextEventTime() (Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for len(v.queue) > 0 && v.queue[0].canceled {
		heap.Pop(&v.queue)
	}
	if len(v.queue) == 0 {
		return 0, false
	}
	return v.queue[0].when, true
}

// eventQueue is a min-heap over (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
