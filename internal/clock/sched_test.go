package clock

import (
	"sync"
	"testing"
)

// collectDispatch records every dispatch as the list of task labels.
type collectDispatch struct {
	mu      sync.Mutex
	batches [][]string
	times   []Time
}

func (c *collectDispatch) fn(now Time, due []*Task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var labels []string
	for _, t := range due {
		labels = append(labels, t.Data.(string))
	}
	c.batches = append(c.batches, labels)
	c.times = append(c.times, now)
}

func TestSchedulerBatchesSameInstant(t *testing.T) {
	vc := NewVirtual()
	var c collectDispatch
	s := NewScheduler(vc, c.fn)

	ta := &Task{Data: "a"}
	tb := &Task{Data: "b"}
	tc := &Task{Data: "c"}
	s.At(10, ta)
	s.At(10, tb)
	s.At(10, tc)

	// Three tasks, one deadline: exactly one clock event.
	if got := vc.PendingEvents(); got != 1 {
		t.Fatalf("PendingEvents = %d, want 1 (one bucket)", got)
	}
	if got := s.PendingBuckets(); got != 1 {
		t.Fatalf("PendingBuckets = %d, want 1", got)
	}
	if got := s.PendingTasks(); got != 3 {
		t.Fatalf("PendingTasks = %d, want 3", got)
	}

	vc.Advance(10)
	if len(c.batches) != 1 {
		t.Fatalf("dispatches = %d, want 1", len(c.batches))
	}
	// Delivery in arm order.
	if got := c.batches[0]; len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("batch = %v, want [a b c]", got)
	}
	if c.times[0] != 10 {
		t.Fatalf("dispatch time = %d, want 10", c.times[0])
	}
	if got := s.PendingTasks(); got != 0 {
		t.Fatalf("PendingTasks after fire = %d, want 0", got)
	}
}

func TestSchedulerDistinctDeadlines(t *testing.T) {
	vc := NewVirtual()
	var c collectDispatch
	s := NewScheduler(vc, c.fn)

	s.At(5, &Task{Data: "early"})
	s.At(10, &Task{Data: "late"})
	if got := s.PendingBuckets(); got != 2 {
		t.Fatalf("PendingBuckets = %d, want 2", got)
	}
	vc.Advance(10)
	if len(c.batches) != 2 {
		t.Fatalf("dispatches = %d, want 2", len(c.batches))
	}
	if c.batches[0][0] != "early" || c.batches[1][0] != "late" {
		t.Fatalf("batches = %v, want [[early] [late]]", c.batches)
	}
}

// TestSchedulerRearmDuringDispatch models the periodic-tick pattern:
// dispatch re-arms every task one period ahead. Tasks re-armed in
// batch order must fire in the same order at the next boundary, and
// the recycled bucket/event must not allocate-per-boundary garbage
// that breaks ordering.
func TestSchedulerRearmDuringDispatch(t *testing.T) {
	vc := NewVirtual()
	var c collectDispatch
	var s *Scheduler
	s = NewScheduler(vc, func(now Time, due []*Task) {
		for _, task := range due {
			s.At(now.Add(7), task)
		}
		c.fn(now, due)
	})
	s.At(7, &Task{Data: "x"})
	s.At(7, &Task{Data: "y"})

	for i := 0; i < 5; i++ {
		vc.Advance(7)
	}
	if len(c.batches) != 5 {
		t.Fatalf("dispatches = %d, want 5", len(c.batches))
	}
	for i, b := range c.batches {
		if len(b) != 2 || b[0] != "x" || b[1] != "y" {
			t.Fatalf("batch %d = %v, want [x y]", i, b)
		}
		if c.times[i] != Time(7*(i+1)) {
			t.Fatalf("batch %d at %d, want %d", i, c.times[i], 7*(i+1))
		}
	}
	// Steady state keeps exactly one pending event.
	if got := vc.PendingEvents(); got != 1 {
		t.Fatalf("PendingEvents = %d, want 1", got)
	}
}

func TestSchedulerCancel(t *testing.T) {
	vc := NewVirtual()
	var c collectDispatch
	s := NewScheduler(vc, c.fn)

	ta := &Task{Data: "a"}
	tb := &Task{Data: "b"}
	s.At(10, ta)
	s.At(10, tb)
	if !s.Cancel(ta) {
		t.Fatal("Cancel of armed task reported false")
	}
	if s.Cancel(ta) {
		t.Fatal("second Cancel reported true")
	}
	// A canceled task silently ignores further arming.
	s.At(10, ta)
	if got := s.PendingTasks(); got != 1 {
		t.Fatalf("PendingTasks = %d, want 1", got)
	}
	vc.Advance(10)
	if len(c.batches) != 1 || len(c.batches[0]) != 1 || c.batches[0][0] != "b" {
		t.Fatalf("batches = %v, want [[b]]", c.batches)
	}

	// Canceling the last task of a bucket cancels its clock event.
	tcN := &Task{Data: "c"}
	s.At(20, tcN)
	s.Cancel(tcN)
	if got := s.PendingBuckets(); got != 0 {
		t.Fatalf("PendingBuckets = %d, want 0", got)
	}
	if got := vc.PendingEvents(); got != 0 {
		t.Fatalf("PendingEvents = %d, want 0 after bucket cancel", got)
	}
}

// stubClock is a manual clock for racing the scheduler against its own
// fire callback: Schedule records the callback instead of running it,
// and Cancel's result is scripted, so a test can model the window where
// an event has already fired but its callback has not yet entered the
// scheduler lock.
type stubClock struct {
	now       Time
	fns       []func(Time)
	cancelOK  bool
	cancelled int
}

func (c *stubClock) Now() Time { return c.now }

func (c *stubClock) Schedule(t Time, fn func(Time)) *Event {
	c.fns = append(c.fns, fn)
	return &Event{when: t, fn: fn}
}

func (c *stubClock) After(d Duration, fn func(Time)) *Event {
	return c.Schedule(c.now.Add(d), fn)
}

func (c *stubClock) Cancel(e *Event) bool {
	c.cancelled++
	return c.cancelOK
}

// TestSchedulerCancelDuringFire pins the Cancel/fire handoff: when the
// last task of a bucket is canceled after the bucket's event fired but
// before the fire callback ran (clock Cancel reports false), the bucket
// must stay owned by fire. Recycling it in Cancel let a concurrent At
// re-arm the same bucket object for a new deadline, which the in-flight
// fire would then dispatch immediately — and fire's own recycle built a
// self-looped free list that handed one bucket to two deadlines.
func TestSchedulerCancelDuringFire(t *testing.T) {
	sc := &stubClock{}
	var c collectDispatch
	s := NewScheduler(sc, c.fn)

	// Arm one task at 10; its event "fires" (fire fn captured but not
	// yet run) and only then does Cancel retire the task.
	ta := &Task{Data: "a"}
	s.At(10, ta)
	sc.cancelOK = false // the event already fired
	if !s.Cancel(ta) {
		t.Fatal("Cancel of armed task reported false")
	}
	if got := s.PendingBuckets(); got != 1 {
		t.Fatalf("PendingBuckets = %d, want 1 (bucket left for in-flight fire)", got)
	}

	// A new deadline armed while fire is still in flight must get its
	// own bucket, not the one fire is about to detach.
	tb := &Task{Data: "b"}
	s.At(20, tb)

	// The in-flight fire now runs: it detaches the empty 10-bucket and
	// recycles it exactly once. Nothing dispatches, and b's bucket is
	// untouched.
	sc.fns[0](10)
	if len(c.batches) != 0 {
		t.Fatalf("batches after empty fire = %v, want none", c.batches)
	}
	if got := s.PendingBuckets(); got != 1 {
		t.Fatalf("PendingBuckets = %d, want 1 (only b's bucket)", got)
	}

	// Free-list integrity: two further deadlines must land in distinct
	// buckets and dispatch independently.
	s.At(30, &Task{Data: "c"})
	if got := s.PendingBuckets(); got != 2 {
		t.Fatalf("PendingBuckets = %d, want 2", got)
	}
	sc.fns[1](20)
	if len(c.batches) != 1 || len(c.batches[0]) != 1 || c.batches[0][0] != "b" {
		t.Fatalf("batches = %v, want [[b]]", c.batches)
	}
	sc.fns[2](30)
	if len(c.batches) != 2 || c.batches[1][0] != "c" {
		t.Fatalf("batches = %v, want [[b] [c]]", c.batches)
	}
	if got := s.PendingBuckets(); got != 0 {
		t.Fatalf("PendingBuckets = %d, want 0", got)
	}

	// The pending-cancel path still cancels for real: Cancel reporting
	// true recycles the bucket immediately.
	sc.cancelOK = true
	td := &Task{Data: "d"}
	s.At(40, td)
	s.Cancel(td)
	if got := s.PendingBuckets(); got != 0 {
		t.Fatalf("PendingBuckets = %d, want 0 after pending cancel", got)
	}
}

func TestSchedulerDoubleArmPanics(t *testing.T) {
	vc := NewVirtual()
	s := NewScheduler(vc, func(Time, []*Task) {})
	task := &Task{Data: "a"}
	s.At(10, task)
	defer func() {
		if recover() == nil {
			t.Fatal("arming an armed task did not panic")
		}
	}()
	s.At(20, task)
}

// TestSchedulerHeapEconomy pins the O(buckets) property: N tasks on a
// shared boundary keep a single event in the clock's queue, where the
// old per-handler tickers kept N.
func TestSchedulerHeapEconomy(t *testing.T) {
	vc := NewVirtual()
	var s *Scheduler
	s = NewScheduler(vc, func(now Time, due []*Task) {
		for _, task := range due {
			s.At(now.Add(10), task)
		}
	})
	const n = 1000
	for i := 0; i < n; i++ {
		s.At(10, &Task{Data: i})
	}
	for round := 0; round < 3; round++ {
		if got := vc.PendingEvents(); got != 1 {
			t.Fatalf("round %d: PendingEvents = %d, want 1 for %d tasks", round, got, n)
		}
		if got := s.PendingTasks(); got != n {
			t.Fatalf("round %d: PendingTasks = %d, want %d", round, got, n)
		}
		vc.Advance(10)
	}
}

func TestSchedulerConcurrentArmCancel(t *testing.T) {
	vc := NewVirtual()
	var mu sync.Mutex
	fired := 0
	var s *Scheduler
	s = NewScheduler(vc, func(now Time, due []*Task) {
		mu.Lock()
		fired += len(due)
		mu.Unlock()
		for _, task := range due {
			s.At(now.Add(1), task)
		}
	})

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				task := &Task{Data: w*1000 + i}
				s.At(Time(1+i%7), task)
				if i%3 == 0 {
					s.Cancel(task)
				}
			}
		}(w)
	}
	wg.Wait()
	vc.Advance(50)
	mu.Lock()
	defer mu.Unlock()
	if fired == 0 {
		t.Fatal("no tasks fired")
	}
}
