package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRealNowAdvances(t *testing.T) {
	r := NewReal()
	defer r.Stop()
	a := r.Now()
	time.Sleep(5 * time.Millisecond)
	b := r.Now()
	if b <= a {
		t.Fatalf("real clock did not advance: %d -> %d", a, b)
	}
}

func TestRealAfterFires(t *testing.T) {
	r := NewReal()
	defer r.Stop()
	done := make(chan Time, 1)
	r.After(1, func(now Time) { done <- now })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("After(1ms) did not fire within 2s")
	}
}

func TestRealScheduleInPastFiresImmediately(t *testing.T) {
	r := NewReal()
	defer r.Stop()
	done := make(chan struct{}, 1)
	r.Schedule(-100, func(Time) { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Schedule(past) did not fire")
	}
}

func TestRealCancel(t *testing.T) {
	r := NewReal()
	defer r.Stop()
	var fired atomic.Bool
	e := r.After(50, func(Time) { fired.Store(true) })
	if !r.Cancel(e) {
		t.Fatal("Cancel returned false for pending timer")
	}
	if r.Cancel(e) {
		t.Fatal("second Cancel returned true")
	}
	time.Sleep(80 * time.Millisecond)
	if fired.Load() {
		t.Fatal("canceled timer fired")
	}
}

func TestRealStopCancelsAll(t *testing.T) {
	r := NewReal()
	var fired atomic.Int32
	for i := 0; i < 5; i++ {
		r.After(50, func(Time) { fired.Add(1) })
	}
	r.Stop()
	time.Sleep(80 * time.Millisecond)
	if got := fired.Load(); got != 0 {
		t.Fatalf("%d timers fired after Stop", got)
	}
}
