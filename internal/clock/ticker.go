package clock

import "sync"

// Ticker fires a callback at a fixed period on any Clock. It is the
// building block for periodic metadata updates.
type Ticker struct {
	clock  Clock
	period Duration
	fn     func(now Time)
	// tickFn is the t.tick method value, bound once so rescheduling
	// does not allocate a fresh closure on every tick.
	tickFn func(now Time)
	// reuser is non-nil when the clock can recycle the ticker's fired
	// event, sparing the per-tick Event allocation as well.
	reuser eventReuser

	mu      sync.Mutex
	stopped bool
	next    *Event
}

// NewTicker schedules fn every period units, first firing one period
// from now. Stop the ticker to release it. period must be positive.
func NewTicker(c Clock, period Duration, fn func(now Time)) *Ticker {
	if period <= 0 {
		panic("clock: ticker period must be positive")
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.tickFn = t.tick
	t.reuser, _ = c.(eventReuser)
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return
	}
	if t.reuser != nil {
		t.next = t.reuser.reuseAfter(t.next, t.period, t.tickFn)
	} else {
		t.next = t.clock.After(t.period, t.tickFn)
	}
}

func (t *Ticker) tick(now Time) {
	t.mu.Lock()
	stopped := t.stopped
	t.mu.Unlock()
	if stopped {
		return
	}
	t.fn(now)
	t.schedule()
}

// Stop cancels future ticks. It is idempotent.
func (t *Ticker) Stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return
	}
	t.stopped = true
	if t.next != nil {
		t.clock.Cancel(t.next)
		t.next = nil
	}
}

// Period returns the tick period.
func (t *Ticker) Period() Duration { return t.period }
