package clock

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestVirtualStartsAtZero(t *testing.T) {
	v := NewVirtual()
	if got := v.Now(); got != 0 {
		t.Fatalf("Now() = %d, want 0", got)
	}
}

func TestVirtualAdvanceMovesTime(t *testing.T) {
	v := NewVirtual()
	v.Advance(25)
	if got := v.Now(); got != 25 {
		t.Fatalf("Now() = %d, want 25", got)
	}
	v.AdvanceTo(100)
	if got := v.Now(); got != 100 {
		t.Fatalf("Now() = %d, want 100", got)
	}
}

func TestVirtualAdvanceToPastIsNoop(t *testing.T) {
	v := NewVirtual()
	v.Advance(50)
	v.AdvanceTo(10)
	if got := v.Now(); got != 50 {
		t.Fatalf("Now() = %d, want 50 (AdvanceTo past must not rewind)", got)
	}
}

func TestVirtualNegativeAdvancePanics(t *testing.T) {
	v := NewVirtual()
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	v.Advance(-1)
}

func TestScheduleFiresInOrder(t *testing.T) {
	v := NewVirtual()
	var fired []Time
	v.Schedule(30, func(now Time) { fired = append(fired, now) })
	v.Schedule(10, func(now Time) { fired = append(fired, now) })
	v.Schedule(20, func(now Time) { fired = append(fired, now) })
	v.Advance(100)
	want := []Time{10, 20, 30}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

func TestScheduleTieBreaksBySchedulingOrder(t *testing.T) {
	v := NewVirtual()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		v.Schedule(10, func(Time) { order = append(order, i) })
	}
	v.Advance(10)
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want ascending scheduling order", order)
		}
	}
}

func TestAdvanceStopsAtBoundary(t *testing.T) {
	v := NewVirtual()
	fired := false
	v.Schedule(11, func(Time) { fired = true })
	v.Advance(10)
	if fired {
		t.Fatal("event at t=11 fired during Advance(10)")
	}
	v.Advance(1)
	if !fired {
		t.Fatal("event at t=11 did not fire by t=11")
	}
}

func TestEventAtExactBoundaryFires(t *testing.T) {
	v := NewVirtual()
	fired := false
	v.Schedule(10, func(Time) { fired = true })
	v.Advance(10)
	if !fired {
		t.Fatal("event at t=10 did not fire during Advance(10)")
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	v := NewVirtual()
	v.Advance(5)
	var at Time = -1
	v.After(10, func(now Time) { at = now })
	v.Advance(20)
	if at != 15 {
		t.Fatalf("After(10) fired at %d, want 15", at)
	}
}

func TestSchedulePastFiresOnNextAdvance(t *testing.T) {
	v := NewVirtual()
	v.Advance(100)
	var at Time = -1
	v.Schedule(5, func(now Time) { at = now })
	v.Advance(1)
	if at != 100 {
		t.Fatalf("past event fired at %d, want current time 100", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	v := NewVirtual()
	fired := false
	e := v.Schedule(10, func(Time) { fired = true })
	if !v.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if v.Cancel(e) {
		t.Fatal("second Cancel returned true")
	}
	v.Advance(100)
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelAfterFireReturnsFalse(t *testing.T) {
	v := NewVirtual()
	e := v.Schedule(10, func(Time) {})
	v.Advance(100)
	if v.Cancel(e) {
		t.Fatal("Cancel returned true for already-fired event")
	}
}

func TestCallbackMaySchedule(t *testing.T) {
	v := NewVirtual()
	var fired []Time
	v.Schedule(10, func(now Time) {
		fired = append(fired, now)
		v.Schedule(now.Add(10), func(now Time) { fired = append(fired, now) })
	})
	v.Advance(100)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 20 {
		t.Fatalf("fired = %v, want [10 20]", fired)
	}
}

func TestCallbackSchedulingSameInstantFiresInSameAdvance(t *testing.T) {
	v := NewVirtual()
	var fired int
	v.Schedule(10, func(now Time) {
		fired++
		v.Schedule(now, func(Time) { fired++ })
	})
	v.Advance(10)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (same-instant event must run in same Advance)", fired)
	}
}

func TestRunUntilIdleDrainsEverything(t *testing.T) {
	v := NewVirtual()
	n := 0
	v.Schedule(10, func(now Time) {
		n++
		v.Schedule(now.Add(1000), func(Time) { n++ })
	})
	v.RunUntilIdle()
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if got := v.Now(); got != 1010 {
		t.Fatalf("Now() = %d, want 1010", got)
	}
}

func TestPendingEvents(t *testing.T) {
	v := NewVirtual()
	e1 := v.Schedule(10, func(Time) {})
	v.Schedule(20, func(Time) {})
	if got := v.PendingEvents(); got != 2 {
		t.Fatalf("PendingEvents() = %d, want 2", got)
	}
	v.Cancel(e1)
	if got := v.PendingEvents(); got != 1 {
		t.Fatalf("PendingEvents() = %d, want 1 after cancel", got)
	}
	v.Advance(100)
	if got := v.PendingEvents(); got != 0 {
		t.Fatalf("PendingEvents() = %d, want 0 after drain", got)
	}
}

func TestNextEventTime(t *testing.T) {
	v := NewVirtual()
	if _, ok := v.NextEventTime(); ok {
		t.Fatal("NextEventTime reported an event on an empty clock")
	}
	e := v.Schedule(42, func(Time) {})
	v.Schedule(99, func(Time) {})
	if got, ok := v.NextEventTime(); !ok || got != 42 {
		t.Fatalf("NextEventTime() = %d,%v want 42,true", got, ok)
	}
	v.Cancel(e)
	if got, ok := v.NextEventTime(); !ok || got != 99 {
		t.Fatalf("NextEventTime() = %d,%v want 99,true after cancel", got, ok)
	}
}

func TestConcurrentScheduleIsSafe(t *testing.T) {
	v := NewVirtual()
	var wg sync.WaitGroup
	var mu sync.Mutex
	count := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				v.Schedule(Time(i), func(Time) {
					mu.Lock()
					count++
					mu.Unlock()
				})
			}
		}(g)
	}
	wg.Wait()
	v.Advance(1000)
	if count != 800 {
		t.Fatalf("count = %d, want 800", count)
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing
// time order and all events at or before the advance horizon fire.
func TestPropertyFiringOrder(t *testing.T) {
	f := func(times []uint16, horizon uint16) bool {
		v := NewVirtual()
		var fired []Time
		for _, ti := range times {
			when := Time(ti)
			v.Schedule(when, func(now Time) { fired = append(fired, now) })
		}
		v.Advance(Duration(horizon))
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := 0
		for _, ti := range times {
			if Time(ti) <= Time(horizon) {
				want++
			}
		}
		return len(fired) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving Advance calls reaches the same final state as a
// single Advance of the total.
func TestPropertySplitAdvanceEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		times := make([]Time, 20)
		for i := range times {
			times[i] = Time(rng.Intn(1000))
		}
		run := func(steps []Duration) []Time {
			v := NewVirtual()
			var fired []Time
			for _, when := range times {
				v.Schedule(when, func(now Time) { fired = append(fired, now) })
			}
			for _, s := range steps {
				v.Advance(s)
			}
			return fired
		}
		single := run([]Duration{1000})
		var split []Duration
		rem := Duration(1000)
		for rem > 0 {
			s := Duration(rng.Intn(int(rem)) + 1)
			split = append(split, s)
			rem -= s
		}
		multi := run(split)
		if len(single) != len(multi) {
			t.Fatalf("trial %d: single fired %d, split fired %d", trial, len(single), len(multi))
		}
		for i := range single {
			if single[i] != multi[i] {
				t.Fatalf("trial %d: firing sequence diverged at %d", trial, i)
			}
		}
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	v := NewVirtual()
	var fired []Time
	tk := NewTicker(v, 10, func(now Time) { fired = append(fired, now) })
	v.Advance(35)
	want := []Time{10, 20, 30}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	tk.Stop()
	v.Advance(100)
	if len(fired) != 3 {
		t.Fatalf("ticker fired after Stop: %v", fired)
	}
}

func TestTickerStopIsIdempotent(t *testing.T) {
	v := NewVirtual()
	tk := NewTicker(v, 5, func(Time) {})
	tk.Stop()
	tk.Stop()
	if got := v.PendingEvents(); got != 0 {
		t.Fatalf("PendingEvents() = %d, want 0 after Stop", got)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	v := NewVirtual()
	defer func() {
		if recover() == nil {
			t.Fatal("NewTicker(period=0) did not panic")
		}
	}()
	NewTicker(v, 0, func(Time) {})
}

func TestTickerPeriod(t *testing.T) {
	v := NewVirtual()
	tk := NewTicker(v, 7, func(Time) {})
	defer tk.Stop()
	if got := tk.Period(); got != 7 {
		t.Fatalf("Period() = %d, want 7", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	var a Time = 10
	if got := a.Add(5); got != 15 {
		t.Fatalf("Add = %d, want 15", got)
	}
	if got := Time(15).Sub(a); got != 5 {
		t.Fatalf("Sub = %d, want 5", got)
	}
	if !a.Before(11) || a.Before(10) {
		t.Fatal("Before misbehaves")
	}
	if !a.After(9) || a.After(10) {
		t.Fatal("After misbehaves")
	}
}
