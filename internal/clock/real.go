package clock

import (
	"sync"
	"time"
)

// Real is a Clock backed by the wall clock. One abstract time unit is
// one millisecond. Scheduled callbacks run on timer goroutines.
type Real struct {
	base time.Time
	mu   sync.Mutex
	// timers maps events to their runtime timers so Cancel can stop
	// them.
	timers map[*Event]*time.Timer
}

// NewReal returns a real-time clock whose time 0 is the moment of the
// call.
func NewReal() *Real {
	return &Real{base: time.Now(), timers: make(map[*Event]*time.Timer)}
}

// Now implements Clock.
func (r *Real) Now() Time {
	return Time(time.Since(r.base) / time.Millisecond)
}

// Schedule implements Clock.
func (r *Real) Schedule(t Time, fn func(Time)) *Event {
	d := t - r.Now()
	if d < 0 {
		d = 0
	}
	return r.After(Duration(d), fn)
}

// After implements Clock.
func (r *Real) After(d Duration, fn func(Time)) *Event {
	if d < 0 {
		d = 0
	}
	e := &Event{when: r.Now().Add(d), fn: fn}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.timers[e] = time.AfterFunc(time.Duration(d)*time.Millisecond, func() {
		r.mu.Lock()
		delete(r.timers, e)
		canceled := e.canceled
		r.mu.Unlock()
		if !canceled {
			fn(r.Now())
		}
	})
	return e
}

// Cancel stops a pending event. It reports whether the event had not
// yet fired.
func (r *Real) Cancel(e *Event) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[e]
	if !ok || e.canceled {
		return false
	}
	e.canceled = true
	t.Stop()
	delete(r.timers, e)
	return true
}

// Stop cancels all pending events.
func (r *Real) Stop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for e, t := range r.timers {
		e.canceled = true
		t.Stop()
		delete(r.timers, e)
	}
}
