// Package smoketest supports in-package smoke tests of main packages:
// it runs a program's main function with controlled os.Args, captures
// everything written to os.Stdout, and returns it. The smoke contract
// is deliberately minimal — the program must terminate without
// panicking or exiting non-zero (either kills the test binary), and
// the caller asserts on a stable fragment of the output.
package smoketest

import (
	"io"
	"os"
	"strings"
	"testing"
)

// Run invokes fn (typically a main function) with os.Args replaced by
// args and returns what fn printed to stdout. Stdout is drained on a
// separate goroutine so programs that print more than a pipe buffer
// don't wedge.
func Run(t *testing.T, args []string, fn func()) (out string) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("smoketest: pipe: %v", err)
	}
	oldArgs, oldStdout := os.Args, os.Stdout
	os.Args, os.Stdout = args, w
	var buf strings.Builder
	done := make(chan struct{})
	go func() {
		io.Copy(&buf, r)
		close(done)
	}()
	defer func() {
		os.Args, os.Stdout = oldArgs, oldStdout
		w.Close()
		<-done
		r.Close()
		out = buf.String()
	}()
	fn()
	return
}
