package costmodel

import (
	"math"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
)

var intSchema = stream.Schema{Name: "ints", Fields: []stream.Field{{Name: "v", Type: "int"}}}

// joinPlan builds the Figure 3 plan: two sources, two time windows,
// a join, and a sink, with cost-model metadata installed.
type joinPlan struct {
	g          *graph.Graph
	vc         *clock.Virtual
	src1, src2 *ops.Source
	w1, w2     *ops.TimeWindow
	join       *ops.Join
	sink       *ops.Sink
}

func newJoinPlan(rate1, rate2 float64, win1, win2 clock.Duration) *joinPlan {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	p := &joinPlan{g: g, vc: vc}
	p.src1 = ops.NewSource(g, "s1", intSchema, rate1, 0)
	p.src2 = ops.NewSource(g, "s2", intSchema, rate2, 0)
	p.w1 = ops.NewTimeWindow(g, "w1", intSchema, win1, 0)
	p.w2 = ops.NewTimeWindow(g, "w2", intSchema, win2, 0)
	p.join = ops.NewJoin(g, "join", intSchema, intSchema,
		func(l, r stream.Tuple) bool { return true }, 0)
	p.sink = ops.NewSink(g, "sink", p.join.Schema(), nil, 0, 0, 0)
	g.Connect(p.src1, p.w1)
	g.Connect(p.src2, p.w2)
	g.Connect(p.w1, p.join)
	g.Connect(p.w2, p.join)
	g.Connect(p.join, p.sink)
	Install(g)
	return p
}

func TestEstCPUFormulaFromDeclaredRates(t *testing.T) {
	p := newJoinPlan(0.1, 0.2, 100, 50)
	sub, err := p.join.Registry().Subscribe(KindEstCPU)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	// estCPU = r1*r2*(v1+v2)*c + r1 + r2 with c=1:
	want := 0.1*0.2*(100+50)*1 + 0.1 + 0.2
	if v, _ := sub.Float(); math.Abs(v-want) > 1e-12 {
		t.Fatalf("estCPU = %v, want %v", v, want)
	}
}

func TestEstCPUInclusionClosure(t *testing.T) {
	p := newJoinPlan(0.1, 0.2, 100, 50)
	sub, _ := p.join.Registry().Subscribe(KindEstCPU)
	defer sub.Unsubscribe()
	// The dependency traversal must have included: window validities
	// and rates, source estimates, and the predicate cost — but not
	// unrelated items (e.g. the join's estimated output rate: an item
	// without a handler is available but unused, Section 2.5).
	for _, reg := range []*core.Registry{p.w1.Registry(), p.w2.Registry()} {
		if !reg.IsIncluded(KindEstValidity) || !reg.IsIncluded(KindEstOutputRate) {
			t.Fatalf("%s: inter-node dependencies not included", reg.ID())
		}
	}
	if !p.src1.Registry().IsIncluded(KindEstOutputRate) {
		t.Fatal("source estimate not included (recursive dependency)")
	}
	if p.join.Registry().IsIncluded(KindEstOutputRate) {
		t.Fatal("estOutputRate included although nobody subscribed")
	}
}

// TestWindowChangePropagates reproduces Section 3.3: the resource
// manager changes a window size; the event triggers the estimated
// element validity, which in turn triggers the join CPU re-estimation
// via an inter-node dependency.
func TestWindowChangePropagates(t *testing.T) {
	p := newJoinPlan(0.1, 0.2, 100, 50)
	sub, _ := p.join.Registry().Subscribe(KindEstCPU)
	defer sub.Unsubscribe()

	p.w1.SetSize(10) // v1: 100 -> 10
	want := 0.1*0.2*(10+50)*1 + 0.1 + 0.2
	if v, _ := sub.Float(); math.Abs(v-want) > 1e-12 {
		t.Fatalf("estCPU after window change = %v, want %v", v, want)
	}
}

func TestEstMemFormula(t *testing.T) {
	p := newJoinPlan(0.5, 0.25, 80, 40)
	sub, err := p.join.Registry().Subscribe(KindEstMem)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	es := float64(intSchema.ElementSize())
	want := 0.5*80*es + 0.25*40*es
	if v, _ := sub.Float(); math.Abs(v-want) > 1e-9 {
		t.Fatalf("estMem = %v, want %v", v, want)
	}
	// Shrinking a window shrinks the estimate proportionally.
	p.w1.SetSize(40)
	want = 0.5*40*es + 0.25*40*es
	if v, _ := sub.Float(); math.Abs(v-want) > 1e-9 {
		t.Fatalf("estMem after shrink = %v, want %v", v, want)
	}
}

// TestDynamicSourceResolution checks Section 4.4.3 in context: with
// rate monitoring already on, the source estimate follows the
// measured rate instead of the declared one.
func TestDynamicSourceResolution(t *testing.T) {
	p := newJoinPlan(0.1, 0.2, 100, 50)
	// Include measured output rate first.
	meas, err := p.src1.Registry().Subscribe(ops.KindOutputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer meas.Unsubscribe()

	est, err := p.src1.Registry().Subscribe(KindEstOutputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer est.Unsubscribe()
	if p.src1.Registry().Refs(ops.KindDeclaredRate) != 0 {
		t.Fatal("declaredRate included although measurement was available")
	}

	// Drive the source: 1 element per 4 units -> measured rate 0.25,
	// declared was 0.1.
	e := engine.New(p.g, p.vc)
	e.Bind(p.src1, stream.NewConstantRate(0, 4, 0))
	e.RunUntil(500)
	if v, _ := est.Float(); v != 0.25 {
		t.Fatalf("estOutputRate = %v, want measured 0.25", v)
	}
}

func TestSourceFallsBackToDeclaredRate(t *testing.T) {
	p := newJoinPlan(0.1, 0.2, 100, 50)
	est, err := p.src1.Registry().Subscribe(KindEstOutputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer est.Unsubscribe()
	if v, _ := est.Float(); v != 0.1 {
		t.Fatalf("estOutputRate = %v, want declared 0.1", v)
	}
	if p.src1.Registry().IsIncluded(ops.KindOutputRate) {
		t.Fatal("measured rate included although not requested")
	}
}

func TestFilterRateScaling(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	src := ops.NewSource(g, "s", intSchema, 0.4, 100)
	f := ops.NewFilter(g, "f", intSchema, func(tp stream.Tuple) bool { return tp[0].(int)%2 == 0 }, 100)
	sink := ops.NewSink(g, "k", intSchema, nil, 0, 0, 0)
	g.Connect(src, f)
	g.Connect(f, sink)
	Install(g)

	sub, err := f.Registry().Subscribe(KindEstOutputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()

	// Drive: rate 0.4 declared; selectivity measures 0.5.
	e := engine.New(g, vc)
	e.Bind(src, stream.NewConstantRate(0, 5, 0))
	e.RunUntil(1000)
	if v, _ := sub.Float(); math.Abs(v-0.4*0.5) > 1e-12 {
		t.Fatalf("filter estOutputRate = %v, want 0.2", v)
	}
}

func TestSamplerRateScaling(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	src := ops.NewSource(g, "s", intSchema, 1.0, 0)
	sm := ops.NewSampler(g, "sm", intSchema, 0.25, 1, 0)
	sink := ops.NewSink(g, "k", intSchema, nil, 0, 0, 0)
	g.Connect(src, sm)
	g.Connect(sm, sink)
	Install(g)
	sub, err := sm.Registry().Subscribe(KindEstOutputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	if v, _ := sub.Float(); v != 0.75 {
		t.Fatalf("sampler estOutputRate = %v, want 0.75", v)
	}
	sm.SetDropProbability(0.5)
	if v, _ := sub.Float(); v != 0.5 {
		t.Fatalf("sampler estOutputRate after change = %v, want 0.5", v)
	}
}

// TestEstimateTracksMeasurement runs the full Figure 3 scenario and
// compares the estimated CPU usage against the measured one.
func TestEstimateTracksMeasurement(t *testing.T) {
	p := newJoinPlan(0.1, 0.1, 50, 50)
	est, _ := p.join.Registry().Subscribe(KindEstCPU)
	defer est.Unsubscribe()
	meas, _ := p.join.Registry().Subscribe(ops.KindMeasuredCPU)
	defer meas.Unsubscribe()

	e := engine.New(p.g, p.vc)
	e.Bind(p.src1, stream.NewConstantRate(0, 10, 0))
	e.Bind(p.src2, stream.NewConstantRate(5, 10, 0))
	e.RunUntil(2000)

	ev, _ := est.Float()
	mv, _ := meas.Float()
	if ev <= 0 || mv <= 0 {
		t.Fatalf("estimates missing: est %v meas %v", ev, mv)
	}
	if ratio := ev / mv; ratio < 0.5 || ratio > 2 {
		t.Fatalf("estimated CPU %v vs measured %v (ratio %.2f) — model should be within 2x", ev, mv, ratio)
	}
}

func TestInstallNodeUnsupported(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	type bare struct{ *graph.Base }
	n := &bare{g.NewBase("bare", graph.OperatorNode)}
	g.Register(n)
	if err := InstallNode(n); err == nil {
		t.Fatal("InstallNode accepted an unsupported node type")
	}
}
