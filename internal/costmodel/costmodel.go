// Package costmodel implements the resource cost model of Figure 3 on
// top of the metadata framework: estimated element validities,
// estimated stream rates, and the estimated CPU and memory usage of
// time-based sliding-window joins.
//
// Every estimate is a metadata item maintained by a triggered handler,
// wired through intra- and inter-node dependencies exactly as the
// figure shows:
//
//   - a window operator's estimated element validity depends on its
//     window size (intra-node); a window-size change fires an event
//     that re-estimates it (Section 3.3);
//   - a node's estimated output rate depends on its input's estimated
//     output rate (recursive inter-node dependency, Section 2.5) and,
//     for filters and joins, on its measured selectivity;
//   - the join's estimated CPU usage depends on the estimated output
//     rates and element validities of both inputs and on its predicate
//     cost (intra-node);
//   - the join's estimated memory usage additionally depends on the
//     inputs' element sizes.
//
// Sources resolve their estimated output rate dynamically (Section
// 4.4.3): if the measured output rate is already provided, the
// estimate follows the measurement; otherwise it falls back to the
// statically declared rate, avoiding the cost of rate monitoring.
package costmodel

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
)

// Estimated metadata kinds registered by this package.
const (
	// KindEstValidity is the estimated element validity of a node's
	// output stream (time units).
	KindEstValidity = core.Kind("estElementValidity")
	// KindEstOutputRate is the estimated output rate (elements per
	// time unit).
	KindEstOutputRate = core.Kind("estOutputRate")
	// KindEstCPU is the estimated CPU usage (work units per time
	// unit) of an operator.
	KindEstCPU = core.Kind("estimatedCPUUsage")
	// KindEstMem is the estimated memory usage in bytes of an
	// operator's state.
	KindEstMem = core.Kind("estimatedMemUsage")
)

// Install registers cost-model metadata on every supported node of the
// graph. Unsupported node types are skipped silently; call InstallNode
// to get per-node errors.
func Install(g *graph.Graph) {
	for _, n := range g.Nodes() {
		_ = InstallNode(n)
	}
}

// InstallNode registers the cost-model items for one node. It returns
// an error for node types the model does not cover.
func InstallNode(n graph.Node) error {
	switch op := n.(type) {
	case *ops.Source:
		installSource(op)
	case *ops.TimeWindow:
		installTimeWindow(op)
	case *ops.Filter:
		installPassThroughRate(n, true)
		installPassThroughValidity(n)
	case *ops.Map, *ops.Union:
		installPassThroughRate(n, false)
		installPassThroughValidity(n)
	case *ops.Sampler:
		installSamplerRate(op)
		installPassThroughValidity(n)
	case *ops.Join:
		installJoin(op)
	case *ops.Sink:
		installPassThroughRate(n, false)
	default:
		return fmt.Errorf("costmodel: unsupported node type %T (%s)", n, n.Name())
	}
	return nil
}

// installSource defines the source's estimated output rate with
// dynamic dependency resolution: prefer the measured output rate when
// it is already provided, otherwise the declared rate.
func installSource(s *ops.Source) {
	r := s.Registry()
	r.MustDefine(&core.Definition{
		Kind: KindEstOutputRate,
		Deps: []core.DepRef{core.Dep(core.Self(), ops.KindDeclaredRate)},
		Resolve: func(rc *core.ResolveContext) []core.DepRef {
			if rc.IsIncluded(core.Self(), ops.KindOutputRate) {
				return []core.DepRef{core.Dep(core.Self(), ops.KindOutputRate)}
			}
			return []core.DepRef{core.Dep(core.Self(), ops.KindDeclaredRate)}
		},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			dep := ctx.Dep(0)
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return dep.Float()
			}), nil
		},
	})
	// A source's raw elements are points in time.
	r.MustDefine(&core.Definition{
		Kind: KindEstValidity,
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewStatic(1.0), nil
		},
	})
}

// installTimeWindow defines the window's estimated validity (equal to
// its window size, refreshed on the window-change event) and its
// estimated output rate (equal to its input's, Section 2.5).
func installTimeWindow(w *ops.TimeWindow) {
	r := w.Registry()
	r.MustDefine(&core.Definition{
		Kind:   KindEstValidity,
		Deps:   []core.DepRef{core.Dep(core.Self(), ops.KindWindowSize)},
		Events: []string{ops.EventWindowChanged},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			size := ctx.Dep(0)
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return size.Float()
			}), nil
		},
	})
	r.MustDefine(&core.Definition{
		Kind: KindEstOutputRate,
		Deps: []core.DepRef{core.Dep(core.Input(0), KindEstOutputRate)},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			dep := ctx.Dep(0)
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return dep.Float()
			}), nil
		},
	})
}

// installPassThroughRate defines the node's estimated output rate as
// its input's estimate, scaled by the measured selectivity when the
// node filters.
func installPassThroughRate(n graph.Node, scaleBySelectivity bool) {
	r := n.Registry()
	deps := []core.DepRef{core.Dep(core.Input(0), KindEstOutputRate)}
	if scaleBySelectivity {
		deps = append(deps, core.Dep(core.Self(), ops.KindSelectivity))
	}
	r.MustDefine(&core.Definition{
		Kind: KindEstOutputRate,
		Deps: deps,
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			in := ctx.Dep(0)
			var sel *core.Handle
			if scaleBySelectivity {
				sel = ctx.Dep(1)
			}
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				rate, err := in.Float()
				if err != nil {
					return nil, err
				}
				if sel != nil {
					s, err := sel.Float()
					if err != nil {
						return nil, err
					}
					rate *= s
				}
				return rate, nil
			}), nil
		},
	})
}

// installPassThroughValidity propagates the input's estimated element
// validity through stateless operators.
func installPassThroughValidity(n graph.Node) {
	n.Registry().MustDefine(&core.Definition{
		Kind: KindEstValidity,
		Deps: []core.DepRef{core.Dep(core.Input(0), KindEstValidity)},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			dep := ctx.Dep(0)
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return dep.Float()
			}), nil
		},
	})
}

// installSamplerRate scales the input rate by the pass probability.
func installSamplerRate(s *ops.Sampler) {
	r := s.Registry()
	r.MustDefine(&core.Definition{
		Kind: KindEstOutputRate,
		Deps: []core.DepRef{
			core.Dep(core.Input(0), KindEstOutputRate),
			core.Dep(core.Self(), ops.KindDropProbability),
		},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			in, drop := ctx.Dep(0), ctx.Dep(1)
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				rate, err := in.Float()
				if err != nil {
					return nil, err
				}
				p, err := drop.Float()
				if err != nil {
					return nil, err
				}
				return rate * (1 - p), nil
			}), nil
		},
	})
}

// installJoin defines the join estimates of Figure 3.
func installJoin(j *ops.Join) {
	r := j.Registry()

	// Estimated CPU usage: with input rates r1, r2 and element
	// validities v1, v2, each arriving left element probes an expected
	// r2*v2 stored right elements and vice versa, at predCost work
	// units per comparison, plus one unit of insertion work per
	// arrival:
	//
	//	estCPU = (r1*(r2*v2) + r2*(r1*v1)) * c + r1 + r2
	//	       = r1*r2*(v1+v2)*c + r1 + r2.
	r.MustDefine(&core.Definition{
		Kind: KindEstCPU,
		Deps: []core.DepRef{
			core.Dep(core.Input(0), KindEstOutputRate),
			core.Dep(core.Input(1), KindEstOutputRate),
			core.Dep(core.Input(0), KindEstValidity),
			core.Dep(core.Input(1), KindEstValidity),
			core.Dep(core.Self(), ops.KindPredicateCost),
		},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			r1, r2 := ctx.Dep(0), ctx.Dep(1)
			v1, v2 := ctx.Dep(2), ctx.Dep(3)
			pc := ctx.Dep(4)
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				fr1, err := r1.Float()
				if err != nil {
					return nil, err
				}
				fr2, err := r2.Float()
				if err != nil {
					return nil, err
				}
				fv1, err := v1.Float()
				if err != nil {
					return nil, err
				}
				fv2, err := v2.Float()
				if err != nil {
					return nil, err
				}
				c, err := pc.Float()
				if err != nil {
					return nil, err
				}
				return fr1*fr2*(fv1+fv2)*c + fr1 + fr2, nil
			}), nil
		},
	})

	// Estimated memory usage: the expected sweep-area populations
	// (rate x validity) times the input element sizes.
	r.MustDefine(&core.Definition{
		Kind: KindEstMem,
		Deps: []core.DepRef{
			core.Dep(core.Input(0), KindEstOutputRate),
			core.Dep(core.Input(1), KindEstOutputRate),
			core.Dep(core.Input(0), KindEstValidity),
			core.Dep(core.Input(1), KindEstValidity),
			core.Dep(core.Input(0), ops.KindElementSize),
			core.Dep(core.Input(1), ops.KindElementSize),
		},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			r1, r2 := ctx.Dep(0), ctx.Dep(1)
			v1, v2 := ctx.Dep(2), ctx.Dep(3)
			s1, s2 := ctx.Dep(4), ctx.Dep(5)
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				fr1, err := r1.Float()
				if err != nil {
					return nil, err
				}
				fr2, err := r2.Float()
				if err != nil {
					return nil, err
				}
				fv1, err := v1.Float()
				if err != nil {
					return nil, err
				}
				fv2, err := v2.Float()
				if err != nil {
					return nil, err
				}
				fs1, err := s1.Float()
				if err != nil {
					return nil, err
				}
				fs2, err := s2.Float()
				if err != nil {
					return nil, err
				}
				return fr1*fv1*fs1 + fr2*fv2*fs2, nil
			}), nil
		},
	})

	// Estimated output rate: total input rate scaled by the join's
	// measured selectivity (output per input element).
	r.MustDefine(&core.Definition{
		Kind: KindEstOutputRate,
		Deps: []core.DepRef{
			core.Dep(core.Input(0), KindEstOutputRate),
			core.Dep(core.Input(1), KindEstOutputRate),
			core.Dep(core.Self(), ops.KindSelectivity),
		},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			r1, r2, sel := ctx.Dep(0), ctx.Dep(1), ctx.Dep(2)
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				fr1, err := r1.Float()
				if err != nil {
					return nil, err
				}
				fr2, err := r2.Float()
				if err != nil {
					return nil, err
				}
				s, err := sel.Float()
				if err != nil {
					return nil, err
				}
				return (fr1 + fr2) * s, nil
			}), nil
		},
	})
}
