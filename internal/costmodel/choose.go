package costmodel

import (
	"repro/internal/clock"
	"repro/internal/core"
)

// Workload characterizes one metadata item's observed access economics
// over a sampling interval, the inputs to the mechanism-selection
// model of Section 3.2: how often the item is read, how often its
// dependencies change, and what one recomputation costs.
type Workload struct {
	// Reads is the observed read rate (accesses per time unit).
	Reads float64
	// Writes is the observed dependency-update rate (changes per time
	// unit).
	Writes float64
	// Cost is the work per recomputation (arbitrary units; only ratios
	// between candidate mechanisms matter, so 1 is a fine default).
	Cost float64
	// SLO is the item's freshness bound: consumers tolerate values up
	// to SLO time units old. 0 means reads must always observe a fresh
	// value, which rules the periodic mechanism out.
	SLO clock.Duration
	// Pure reports that the item's on-demand form is memoizable
	// (Definition.Pure semantics): repeat reads against unchanged
	// dependencies can be served from a dependency-stamped memo.
	Pure bool
}

// Decision is the outcome of Choose: the cheapest maintenance
// mechanism for the workload and its estimated steady-state cost.
type Decision struct {
	// Mech is the chosen update mechanism.
	Mech core.Mechanism
	// Window is the update period when Mech is periodic, 0 otherwise.
	Window clock.Duration
	// CostRate is the estimated maintenance cost of the choice in work
	// units per time unit.
	CostRate float64
}

// Rate returns the estimated steady-state maintenance cost (work per
// time unit) of running the workload under the given mechanism, using
// the same model as Choose. For the periodic mechanism the window is
// taken as given (pass the handler's actual window); rate 0 is
// returned for a non-positive window or an unknown mechanism, and the
// memoized on-demand rate applies only when the workload is Pure.
func (w Workload) Rate(m core.Mechanism, window clock.Duration) float64 {
	switch m {
	case core.OnDemandMechanism:
		if w.Pure {
			return min(w.Reads, w.Writes) * w.Cost
		}
		return w.Reads * w.Cost
	case core.TriggeredMechanism:
		return w.Writes * w.Cost
	case core.PeriodicMechanism:
		if window <= 0 {
			return 0
		}
		return w.Cost / float64(window)
	}
	return 0
}

// Choose picks the cheapest maintenance mechanism for the workload.
//
// The candidate cost rates are:
//
//	on-demand           Reads  * Cost   (recompute per access)
//	memoized on-demand  min(Reads, Writes) * Cost
//	                    (recompute only on first access after a
//	                    dependency change; requires Pure)
//	triggered           Writes * Cost   (recompute per dependency change)
//	periodic            Cost / W        (one recompute per window)
//
// The periodic candidate is only admissible when the workload declares
// a positive freshness SLO — its reads observe values up to one window
// old — and its window is the SLO clamped into [minWindow, maxWindow]:
// the longest period the freshness bound permits, hence the cheapest
// admissible cadence.
//
// Candidates are evaluated in the order memoized on-demand, on-demand,
// triggered, periodic, and a later candidate replaces an earlier one
// only when strictly cheaper. Ties therefore keep the fresher, less
// stateful mechanism, which gives the model deterministic, pinnable
// thresholds: Reads == Writes chooses on-demand, not triggered, and a
// periodic window would have to beat — not match — the event-driven
// mechanisms to win.
func Choose(w Workload, minWindow, maxWindow clock.Duration) Decision {
	type candidate struct {
		mech   core.Mechanism
		window clock.Duration
		rate   float64
	}
	var cands []candidate
	if w.Pure {
		cands = append(cands, candidate{core.OnDemandMechanism, 0, min(w.Reads, w.Writes) * w.Cost})
	}
	cands = append(cands,
		candidate{core.OnDemandMechanism, 0, w.Reads * w.Cost},
		candidate{core.TriggeredMechanism, 0, w.Writes * w.Cost},
	)
	if w.SLO > 0 {
		win := w.SLO
		if minWindow > 0 && win < minWindow {
			win = minWindow
		}
		if maxWindow > 0 && win > maxWindow {
			win = maxWindow
		}
		if win > 0 {
			cands = append(cands, candidate{core.PeriodicMechanism, win, w.Cost / float64(win)})
		}
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.rate < best.rate {
			best = c
		}
	}
	return Decision{Mech: best.mech, Window: best.window, CostRate: best.rate}
}
