package costmodel

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
)

// TestChooseThresholds pins the decision thresholds of the mechanism
// selection model: which mechanism wins for which read/write/cost/SLO
// regime, including the exact tie-breaking behaviour at the
// boundaries.
func TestChooseThresholds(t *testing.T) {
	cases := []struct {
		name     string
		w        Workload
		minW     clock.Duration
		maxW     clock.Duration
		mech     core.Mechanism
		window   clock.Duration
		costRate float64
	}{
		{
			name: "hot reads, rare writes -> triggered",
			w:    Workload{Reads: 100, Writes: 1, Cost: 1},
			mech: core.TriggeredMechanism, costRate: 1,
		},
		{
			name: "hot writes, rare reads -> on-demand",
			w:    Workload{Reads: 1, Writes: 100, Cost: 1},
			mech: core.OnDemandMechanism, costRate: 1,
		},
		{
			name: "reads == writes tie -> on-demand (fresher wins ties)",
			w:    Workload{Reads: 10, Writes: 10, Cost: 2},
			mech: core.OnDemandMechanism, costRate: 20,
		},
		{
			name: "pure hot both ways -> memoized on-demand at min(R,W)",
			w:    Workload{Reads: 100, Writes: 40, Cost: 1, Pure: true},
			mech: core.OnDemandMechanism, costRate: 40,
		},
		{
			name: "pure memo ties triggered -> memo (earlier candidate)",
			w:    Workload{Reads: 100, Writes: 5, Cost: 1, Pure: true},
			mech: core.OnDemandMechanism, costRate: 5,
		},
		{
			name: "loose SLO + costly compute -> periodic at SLO window",
			w:    Workload{Reads: 10, Writes: 10, Cost: 50, SLO: 100},
			minW: 10, maxW: 1000,
			mech: core.PeriodicMechanism, window: 100, costRate: 0.5,
		},
		{
			name: "SLO below floor -> window clamped up to minWindow",
			w:    Workload{Reads: 10, Writes: 10, Cost: 50, SLO: 4},
			minW: 10, maxW: 1000,
			mech: core.PeriodicMechanism, window: 10, costRate: 5,
		},
		{
			name: "SLO above ceiling -> window clamped down to maxWindow",
			w:    Workload{Reads: 10, Writes: 10, Cost: 50, SLO: 5000},
			minW: 10, maxW: 1000,
			mech: core.PeriodicMechanism, window: 1000, costRate: 0.05,
		},
		{
			name: "no SLO -> periodic inadmissible however cheap it would be",
			w:    Workload{Reads: 10, Writes: 10, Cost: 50, SLO: 0},
			minW: 10, maxW: 1000,
			mech: core.OnDemandMechanism, costRate: 500,
		},
		{
			name: "periodic must strictly beat event-driven: tie -> triggered",
			// trig = 1*1 = 1; periodic = 1/1 = 1 at the clamped window.
			w:    Workload{Reads: 5, Writes: 1, Cost: 1, SLO: 1},
			minW: 1, maxW: 10,
			mech: core.TriggeredMechanism, costRate: 1,
		},
		{
			name: "idle item -> all rates zero, on-demand by order",
			w:    Workload{Reads: 0, Writes: 0, Cost: 1},
			mech: core.OnDemandMechanism, costRate: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := Choose(tc.w, tc.minW, tc.maxW)
			if d.Mech != tc.mech || d.Window != tc.window || d.CostRate != tc.costRate {
				t.Fatalf("Choose(%+v, %d, %d) = %+v, want {%v %d %v}",
					tc.w, tc.minW, tc.maxW, d, tc.mech, tc.window, tc.costRate)
			}
		})
	}
}

// TestWorkloadRate pins Rate, the per-mechanism cost estimator the
// controller uses to price the CURRENT configuration (Choose prices
// the candidates).
func TestWorkloadRate(t *testing.T) {
	w := Workload{Reads: 8, Writes: 2, Cost: 3}
	if got := w.Rate(core.OnDemandMechanism, 0); got != 24 {
		t.Errorf("on-demand rate = %v, want 24", got)
	}
	if got := w.Rate(core.TriggeredMechanism, 0); got != 6 {
		t.Errorf("triggered rate = %v, want 6", got)
	}
	if got := w.Rate(core.PeriodicMechanism, 6); got != 0.5 {
		t.Errorf("periodic rate = %v, want 0.5", got)
	}
	if got := w.Rate(core.PeriodicMechanism, 0); got != 0 {
		t.Errorf("periodic rate at window 0 = %v, want 0", got)
	}
	w.Pure = true
	if got := w.Rate(core.OnDemandMechanism, 0); got != 6 {
		t.Errorf("memoized on-demand rate = %v, want min(R,W)*C = 6", got)
	}
	if got := w.Rate(core.StaticMechanism, 0); got != 0 {
		t.Errorf("static rate = %v, want 0", got)
	}
}
