package costmodel

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
)

// TestMapUnionPassThroughEstimates verifies the cost model through a
// plan with map and union operators: estimates pass through stateless
// operators unchanged.
func TestMapUnionPassThroughEstimates(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	s1 := ops.NewSource(g, "s1", intSchema, 0.3, 0)
	s2 := ops.NewSource(g, "s2", intSchema, 0.2, 0)
	w1 := ops.NewTimeWindow(g, "w1", intSchema, 80, 0)
	m := ops.NewMap(g, "m", intSchema, func(tp stream.Tuple) stream.Tuple { return tp }, 0)
	u := ops.NewUnion(g, "u", intSchema, 0)
	sink := ops.NewSink(g, "k", intSchema, nil, 0, 0, 0)
	g.Connect(s1, w1)
	g.Connect(w1, m)
	g.Connect(m, u)
	g.Connect(s2, u)
	g.Connect(u, sink)
	Install(g)

	// Map validity and rate follow the window upstream.
	mv, err := m.Registry().Subscribe(KindEstValidity)
	if err != nil {
		t.Fatal(err)
	}
	defer mv.Unsubscribe()
	if v, _ := mv.Float(); v != 80 {
		t.Fatalf("map estValidity = %v, want 80 (pass-through)", v)
	}
	mr, err := m.Registry().Subscribe(KindEstOutputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Unsubscribe()
	if v, _ := mr.Float(); v != 0.3 {
		t.Fatalf("map estOutputRate = %v, want 0.3", v)
	}

	// The union's rate follows its first input in this simplified
	// model; its validity passes through as well.
	ur, err := u.Registry().Subscribe(KindEstOutputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer ur.Unsubscribe()
	if v, _ := ur.Float(); v != 0.3 {
		t.Fatalf("union estOutputRate = %v, want 0.3", v)
	}
}

// TestWindowChangePropagatesThroughMap: an event at the window reaches
// estimates downstream of stateless operators.
func TestWindowChangePropagatesThroughMap(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	s := ops.NewSource(g, "s", intSchema, 0.1, 0)
	w := ops.NewTimeWindow(g, "w", intSchema, 100, 0)
	m := ops.NewMap(g, "m", intSchema, func(tp stream.Tuple) stream.Tuple { return tp }, 0)
	sink := ops.NewSink(g, "k", intSchema, nil, 0, 0, 0)
	g.Connect(s, w)
	g.Connect(w, m)
	g.Connect(m, sink)
	Install(g)

	sub, err := m.Registry().Subscribe(KindEstValidity)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	w.SetSize(25)
	if v, _ := sub.Float(); v != 25 {
		t.Fatalf("map estValidity after window change = %v, want 25 (inter-node trigger)", v)
	}
}

// TestSourceValidityIsPoint: raw source elements are points in time.
func TestSourceValidityIsPoint(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	s := ops.NewSource(g, "s", intSchema, 0.1, 0)
	Install(g)
	sub, err := s.Registry().Subscribe(KindEstValidity)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	if v, _ := sub.Float(); v != 1 {
		t.Fatalf("source estValidity = %v, want 1", v)
	}
}

// TestJoinEstOutputRate covers the join's output-rate estimate.
func TestJoinEstOutputRate(t *testing.T) {
	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	s1 := ops.NewSource(g, "s1", intSchema, 0.4, 100)
	s2 := ops.NewSource(g, "s2", intSchema, 0.6, 100)
	w1 := ops.NewTimeWindow(g, "w1", intSchema, 50, 100)
	w2 := ops.NewTimeWindow(g, "w2", intSchema, 50, 100)
	j := ops.NewJoin(g, "j", intSchema, intSchema,
		func(l, r stream.Tuple) bool { return true }, 100)
	sink := ops.NewSink(g, "k", j.Schema(), nil, 0, 0, 100)
	g.Connect(s1, w1)
	g.Connect(s2, w2)
	g.Connect(w1, j)
	g.Connect(w2, j)
	g.Connect(j, sink)
	Install(g)

	sub, err := j.Registry().Subscribe(KindEstOutputRate)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Unsubscribe()
	// (r1 + r2) * selectivity; the selectivity item starts at 1.
	if v, _ := sub.Float(); v != 1.0 {
		t.Fatalf("join estOutputRate = %v, want (0.4+0.6)*1", v)
	}
}
