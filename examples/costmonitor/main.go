// Costmonitor reproduces the Figure 3 / Section 2.5 scenario as an
// application: a monitoring tool subscribes to the estimated CPU usage
// of a time-based sliding-window join and plots it against the
// measured CPU usage. Halfway through, the window sizes are halved
// (Section 3.3's runtime adjustment): the event-triggered estimate
// steps immediately, and the measurement follows as old state expires.
//
// Run with:
//
//	go run ./examples/costmonitor
package main

import (
	"fmt"
	"os"

	"repro/pipes"
)

func main() {
	sys := pipes.NewSystem(pipes.WithStatWindow(200))
	schema := pipes.Schema{Name: "ticks", Fields: []pipes.Field{{Name: "v", Type: "int"}}}

	// Two streams at rate 0.1, windowed to 100 units each, joined on
	// a cross product (Figure 3's plan).
	left := sys.Source("left", schema, pipes.NewConstantRate(0, 10, 0), 0.1)
	right := sys.Source("right", schema, pipes.NewConstantRate(5, 10, 0), 0.1)
	lw := left.Window("lw", 100)
	rw := right.Window("rw", 100)
	join := lw.Join(rw, "join", func(a, b pipes.Tuple) bool { return true })
	join.Sink("results", nil)

	// The cost model registers the estimated items (triggered
	// handlers wired through intra- and inter-node dependencies).
	sys.InstallCostModel()

	// The monitoring tool subscribes to estimate and measurement and
	// samples both every 200 units.
	rec := sys.NewRecorder(200)
	defer rec.Close()
	check(rec.Track("estCPU", join.Metadata(), pipes.KindEstCPU))
	check(rec.Track("measCPU", join.Metadata(), pipes.KindMeasuredCPU))
	check(rec.Track("estMem", join.Metadata(), pipes.KindEstMem))
	check(rec.Track("measMem", join.Metadata(), pipes.KindMemUsage))

	sys.Run(4000)
	fmt.Println("halving both window sizes (fires windowSizeChanged)...")
	lw.SetWindowSize(50)
	rw.SetWindowSize(50)
	sys.Run(8000)

	fmt.Println("\nrecorded series (CSV):")
	check(rec.WriteCSV(os.Stdout))

	est := rec.Series("estCPU")
	meas := rec.Series("measCPU")
	fmt.Printf("\nsteady state: estimated CPU %.3f vs measured %.3f (work units per time unit)\n",
		est.Last().Value, meas.Last().Value)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
