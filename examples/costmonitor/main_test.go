package main

import (
	"strings"
	"testing"

	"repro/internal/smoketest"
)

func TestSmoke(t *testing.T) {
	out := smoketest.Run(t, []string{"costmonitor"}, main)
	for _, want := range []string{"halving both window sizes", "recorded series (CSV):", "steady state:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
