// Scheduling demonstrates the paper's first motivating application:
// the Chain strategy [5] consumes live selectivity metadata to
// minimize inter-operator queue memory. A bursty source feeds two
// branches — one highly selective, one pass-through — under a tight
// service budget; Chain is compared against round-robin and FIFO.
//
// Run with:
//
//	go run ./examples/scheduling
package main

import (
	"fmt"

	"repro/pipes"
)

// runStrategy executes the two-branch plan under one scheduler and
// returns the peak and final queue memory.
func runStrategy(strategy string) (peak, final int64, processed int64) {
	sys := pipes.NewSystem(
		pipes.WithStatWindow(50),
		pipes.WithScheduling(strategy, 2, 1),
	)
	schema := pipes.Schema{Name: "ints", Fields: []pipes.Field{{Name: "v", Type: "int"}}}

	// Bursts: 1 element/unit for 300 units, then 300 units silence.
	src := sys.Source("src", schema, pipes.NewBursty(0, 1, 300, 300, 0), 0)

	// Branch A discards 90% at its first filter; branch B passes
	// everything through two hops.
	a1 := src.Filter("a1", func(t pipes.Tuple) bool { return t[0].(int)%10 == 0 })
	a2 := a1.Filter("a2", func(pipes.Tuple) bool { return true })
	a2.Sink("appA", nil)
	b1 := src.Filter("b1", func(pipes.Tuple) bool { return true })
	b2 := b1.Filter("b2", func(pipes.Tuple) bool { return true })
	b2.Sink("appB", nil)

	eng := sys.Engine()
	for t := pipes.Time(1); t <= 1200; t++ {
		sys.Run(t)
		if b := eng.QueuedBytes(); b > peak {
			peak = b
		}
	}
	return peak, eng.QueuedBytes(), eng.Processed()
}

func main() {
	fmt.Println("queue memory under a 2-services/unit budget, bursty arrivals:")
	fmt.Printf("%12s %16s %16s %12s\n", "strategy", "peak bytes", "final bytes", "processed")
	results := map[string]int64{}
	for _, s := range []string{"roundrobin", "fifo", "chain"} {
		peak, final, processed := runStrategy(s)
		results[s] = peak
		fmt.Printf("%12s %16d %16d %12d\n", s, peak, final, processed)
	}
	fmt.Printf("\nchain vs roundrobin peak: %.0f%%   chain vs fifo peak: %.0f%%\n",
		100*float64(results["chain"])/float64(results["roundrobin"]),
		100*float64(results["chain"])/float64(results["fifo"]))
	fmt.Println("Chain reads each operator's selectivity item and spends its budget where servicing frees the most memory.")
}
