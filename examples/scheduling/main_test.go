package main

import (
	"strings"
	"testing"

	"repro/internal/smoketest"
)

func TestSmoke(t *testing.T) {
	out := smoketest.Run(t, []string{"scheduling"}, main)
	for _, want := range []string{"roundrobin", "fifo", "chain vs roundrobin peak"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
