// Watch demonstrates the epoch-diff watch hub: a consumer subscribes
// to a metadata item's version stream, receives a snapshot frame to
// catch up and then per-publication deltas, disconnects while the
// item keeps changing, and rejoins with its last seen version — the
// whole gap collapses into one snapshot frame instead of a replay.
// A final burst into a tiny subscriber ring shows coalesce-to-latest
// overflow: the publisher never blocks, and the slow consumer still
// ends on the newest version.
//
// Run with:
//
//	go run ./examples/watch
package main

import (
	"fmt"
	"os"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/pipes"
)

func main() {
	sys := pipes.NewSystem()
	schema := pipes.Schema{Name: "events", Fields: []pipes.Field{{Name: "v", Type: "int"}}}
	node := sys.Source("op", schema, nil, 0)
	reg := node.Metadata()

	// "queue" republishes on every enq event.
	depth := 0
	check(reg.Define(&pipes.Definition{
		Kind:   "queue",
		Events: []string{"enq"},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return float64(depth), nil
			}), nil
		},
	}))

	// An application subscription pins the item so its version stream
	// survives watcher churn (versions are per entry lifetime).
	sub, err := node.Subscribe("queue")
	check(err)
	defer sub.Unsubscribe()

	hub := sys.WatchHub()
	defer hub.Close()
	enq := func(n int) {
		for i := 0; i < n; i++ {
			depth++
			reg.FireEvent("enq")
		}
	}
	show := func(ev pipes.WatchEvent) {
		v, err := pipes.FloatOf(ev.Value)
		check(err)
		kind := "delta"
		if ev.Snapshot {
			kind = "snapshot"
		}
		fmt.Printf("  %-8s v%-3d queue=%.0f\n", kind, ev.Version, v)
	}
	next := func(w *pipes.Watcher) pipes.WatchEvent {
		ev, ok := w.Next()
		if !ok {
			check(fmt.Errorf("watcher closed unexpectedly"))
		}
		return ev
	}

	fmt.Println("live watch — join behind, catch up, then per-publication deltas:")
	w, err := node.Watch("queue", pipes.WatchOptions{})
	check(err)
	first := next(w)
	show(first)
	for i := 0; i < 3; i++ {
		enq(1)
		hub.Barrier()
		show(next(w))
	}
	lastSeen := w.LastSent()
	w.Close()
	fmt.Printf("disconnected at v%d; 5 enqueues happen while away\n", lastSeen)
	enq(5)

	fmt.Printf("rejoin with since=%d — the gap collapses into one snapshot:\n", lastSeen)
	w2, err := node.Watch("queue", pipes.WatchOptions{Since: lastSeen})
	check(err)
	show(next(w2))
	enq(1)
	hub.Barrier()
	show(next(w2))
	w2.Close()

	fmt.Println("burst of 100 publications into a 4-slot ring (publisher never blocks):")
	w3, err := node.Watch("queue", pipes.WatchOptions{Buffer: 4})
	check(err)
	defer w3.Close()
	show(next(w3)) // snapshot of the pre-burst state
	enq(100)
	hub.Barrier()
	var last pipes.WatchEvent
	n := 0
	for {
		ev, ok := w3.Poll()
		if !ok {
			break
		}
		last, n = ev, n+1
	}
	v, err := pipes.FloatOf(last.Value)
	check(err)
	fmt.Printf("  delivered as %d event(s) <= ring size; caught up to v%d queue=%.0f\n", n, last.Version, v)

	st := sys.Env().Stats().Snapshot()
	fmt.Printf("\nhub counters: catchUps=%d coalescedWakeups=%d shedNotifies=%d\n",
		st.CatchUps, st.CoalescedWakeups, st.ShedNotifies)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
