package main

import (
	"strings"
	"testing"

	"repro/internal/smoketest"
)

func TestSmoke(t *testing.T) {
	out := smoketest.Run(t, []string{"watch"}, main)
	for _, want := range []string{
		"snapshot v1   queue=0",
		"delta    v4   queue=3",
		"disconnected at v4",
		"snapshot v9   queue=8", // 5 missed publications, one frame
		"delta    v10  queue=9",
		"caught up to v110 queue=109",
		"catchUps=3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
