// Adaptive demonstrates the two resource-management consumers of the
// metadata framework working together on an overloaded join:
//
//   - the WindowAdaptor (Section 3.3, [9]) keeps the join's estimated
//     memory usage under a bound by shrinking window sizes — every
//     adjustment fires the window-change event and the cost model
//     re-estimates instantly;
//   - the LoadShedder ([21]) keeps the join's measured CPU usage under
//     a capacity by raising a sampler's drop probability.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"os"

	"repro/pipes"
)

func main() {
	sys := pipes.NewSystem(pipes.WithStatWindow(100))
	schema := pipes.Schema{Name: "events", Fields: []pipes.Field{{Name: "v", Type: "int"}}}

	// A fast stream through a shedding sampler, joined with a second
	// fast stream over generous windows: both memory and CPU are
	// overloaded at the preferred configuration.
	src1 := sys.Source("src1", schema, pipes.NewConstantRate(0, 2, 0), 0.5)
	src2 := sys.Source("src2", schema, pipes.NewConstantRate(1, 2, 0), 0.5)
	shed := src1.Shed("shedder", 0, 7)
	w1 := shed.Window("w1", 400)
	w2 := src2.Window("w2", 400)
	join := w1.Join(w2, "join", func(a, b pipes.Tuple) bool { return true })
	join.Sink("out", nil)
	sys.InstallCostModel()

	const memBound = 4000.0 // bytes of estimated join state
	const cpuCap = 8.0      // work units per time unit

	adaptor, err := sys.NewWindowAdaptor(join, []*pipes.Stream{w1, w2}, memBound, 200)
	check(err)
	defer adaptor.Close()
	shedder, err := sys.NewLoadShedder(join, pipes.KindMeasuredCPU, shed, cpuCap, 200)
	check(err)
	defer shedder.Close()

	estMem, err := join.Subscribe(pipes.KindEstMem)
	check(err)
	defer estMem.Unsubscribe()
	cpu, err := join.Subscribe(pipes.KindMeasuredCPU)
	check(err)
	defer cpu.Unsubscribe()

	fmt.Printf("%8s %12s %12s %12s %10s\n", "t", "estMem", "measCPU", "windowScale", "dropP")
	for t := pipes.Time(1000); t <= 10_000; t += 1000 {
		sys.Run(t)
		m, _ := estMem.Float()
		c, _ := cpu.Float()
		fmt.Printf("%8d %12.1f %12.2f %12.3f %10.3f\n",
			t, m, c, adaptor.Scale(), shed.Node().(interface{ DropProbability() float64 }).DropProbability())
	}

	m, _ := estMem.Float()
	c, _ := cpu.Float()
	fmt.Printf("\nbounds: estMem %.0f <= %.0f ? %v    measCPU %.2f <= ~%.0f ? %v\n",
		m, memBound, m <= memBound*1.05, c, cpuCap, c <= cpuCap*1.5)
	fmt.Printf("window adjustments performed: %d, shedder steps: %d\n",
		adaptor.Adjustments(), shedder.Steps())
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
