package main

import (
	"strings"
	"testing"

	"repro/internal/smoketest"
)

func TestSmoke(t *testing.T) {
	out := smoketest.Run(t, []string{"adaptive"}, main)
	for _, want := range []string{"window adjustments performed", "bounds:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
