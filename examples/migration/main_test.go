package main

import (
	"strings"
	"testing"

	"repro/internal/smoketest"
)

func TestSmoke(t *testing.T) {
	out := smoketest.Run(t, []string{"migration"}, main)
	for _, want := range []string{
		"read-heavy", "triggered",
		"write-heavy", "on-demand",
		"mixed under SLO", "periodic(w=100)",
		"total live migrations: 3",
		"correct: true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
