// Migration demonstrates closed-loop adaptive maintenance (Section
// 3.2 as a live controller): a derived metadata item declares all
// three maintenance forms, and as its workload shifts the controller
// live-migrates it — subscribers, last-good value, and dependents all
// preserved — to whichever mechanism is cheapest:
//
//   - hot reads over quiet inputs -> triggered (recompute only when an
//     input actually changes, reads are free);
//   - hot input churn, almost never read -> on-demand (recompute only
//     when somebody asks);
//   - hot reads AND hot churn under a freshness SLO -> periodic at the
//     SLO window (one recompute per window, regardless of load).
//
// Run with:
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"os"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/pipes"
)

func main() {
	sys := pipes.NewSystem(pipes.WithAdaptiveMaintenance(pipes.AdaptConfig{
		Interval:   100, // sample each item's economics every 100 time units
		Hysteresis: 0.1, // migrate only on a >=10% estimated saving
		MinDwell:   -1,  // demo: no dwell, react on the first sample
	}))
	schema := pipes.Schema{Name: "events", Fields: []pipes.Field{{Name: "v", Type: "int"}}}
	node := sys.Source("op", schema, nil, 0)
	reg := node.Metadata()

	// "queue" is event-driven source metadata: it republishes on every
	// "enq" event. "load" derives from it and declares an AdaptSpec —
	// the same computation in on-demand, periodic, and triggered form —
	// which is what makes it migratable at runtime.
	depth := 0
	check(reg.Define(&pipes.Definition{
		Kind:   "queue",
		Events: []string{"enq"},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return float64(depth), nil
			}), nil
		},
	}))
	compute := func(ctx *core.BuildContext) core.ComputeFunc {
		dep := ctx.Dep(0)
		return func(clock.Time) (core.Value, error) {
			f, err := dep.Float()
			if err != nil {
				return nil, err
			}
			return f / 10, nil
		}
	}
	check(reg.Define(&pipes.Definition{
		Kind: "load",
		Deps: []pipes.DepRef{pipes.Dep(pipes.SelfNode(), "queue")},
		Adapt: &pipes.AdaptSpec{
			OnDemand:  compute,
			Triggered: compute,
			Periodic: func(ctx *core.BuildContext) core.WindowComputeFunc {
				dep := ctx.Dep(0)
				return func(_, _ clock.Time) (core.Value, error) {
					f, err := dep.Float()
					if err != nil {
						return nil, err
					}
					return f / 10, nil
				}
			},
			Window: 100,
		},
		Build: func(ctx *core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(compute(ctx)), nil
		},
	}))

	sub, err := node.Subscribe("load")
	check(err)
	defer sub.Unsubscribe()

	// Hand "load" to the controller: freshness SLO 100 (values may be
	// up to 100 units stale, so a periodic cadence is admissible),
	// recompute cost hint 50.
	check(node.Autotune("load", 100, 50))

	read := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := sub.Float(); err != nil {
				check(err)
			}
		}
	}
	churn := func(n int) {
		for i := 0; i < n; i++ {
			depth++
			reg.FireEvent("enq")
		}
	}
	phase := func(name string, reads, updates int) {
		read(reads)
		churn(updates)
		sys.Run(sys.Now() + 100) // the sampling tick fires in here
		mech, _ := reg.Mechanism("load")
		desc := mech.String()
		if w, ok := reg.Window("load"); ok && mech == pipes.PeriodicMechanism {
			desc = fmt.Sprintf("%s(w=%d)", mech, w)
		}
		fmt.Printf("  %-22s %6d %9d   %s\n", name, reads, updates, desc)
	}

	fmt.Println("adaptive maintenance of one derived item (\"load\"), sampled every 100 units:")
	fmt.Printf("  %-22s %6s %9s   %s\n", "phase", "reads", "updates", "mechanism after")
	phase("read-heavy", 200, 0)
	phase("write-heavy", 1, 300)
	phase("mixed under SLO", 200, 300)

	fmt.Println("\nmigrations performed:")
	for _, m := range sys.AdaptiveMigrations() {
		fmt.Printf("  %s\n", m)
	}
	v, err := sub.Float()
	check(err)
	fmt.Printf("\ntotal live migrations: %d; load = %.1f (queue depth %d, correct: %v)\n",
		sys.Env().Stats().Migrations.Load(), v, depth, v == float64(depth)/10)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
