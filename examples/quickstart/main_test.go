package main

import (
	"strings"
	"testing"

	"repro/internal/smoketest"
)

func TestSmoke(t *testing.T) {
	out := smoketest.Run(t, []string{"quickstart"}, main)
	for _, want := range []string{"alerts delivered", "hot-filter selectivity", "metadata inventory"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
