// Quickstart: build the Figure 1 style query graph — raw sensor
// streams at the bottom, a shared operator graph in the middle, sinks
// connecting applications at the top — and access metadata on demand.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/pipes"
)

func main() {
	sys := pipes.NewSystem(pipes.WithStatWindow(100))

	// A sensor stream: (sensorID, temperature), one reading every 5
	// time units.
	schema := pipes.Schema{Name: "readings", Fields: []pipes.Field{
		{Name: "sensor", Type: "int"},
		{Name: "temp", Type: "int"},
	}}
	gen := pipes.NewConstantRate(0, 5, 0)
	gen.MakeTup = func(i int) pipes.Tuple {
		return pipes.Tuple{i % 4, 15 + (i*7)%25} // temps 15..39
	}
	readings := sys.Source("sensors", schema, gen, 0.2)

	// A shared subquery: the hot-readings filter feeds two
	// applications (subquery sharing).
	hot := readings.Filter("hot", func(t pipes.Tuple) bool { return t[1].(int) >= 30 })

	alerts := 0
	hot.Sink("alerting", func(e pipes.Element) { alerts++ })

	// Second application: count hot readings per sensor over a
	// 500-unit sliding window.
	perSensor := hot.Window("recent", 500).GroupAggregate("counts", 0, pipes.NewCount())
	var lastCount pipes.Tuple
	perSensor.Sink("dashboard", func(e pipes.Element) { lastCount = e.Tuple })

	// Metadata on demand: subscribing creates exactly the handlers
	// needed — here the filter's selectivity (periodic measurement)
	// and its running average input rate (triggered, which implicitly
	// includes the periodic input rate it depends on).
	sel, err := hot.Subscribe(pipes.KindSelectivity)
	check(err)
	defer sel.Unsubscribe()
	avgRate, err := hot.Subscribe(pipes.KindAvgInputRate)
	check(err)
	defer avgRate.Unsubscribe()

	sys.Run(10_000)

	selV, _ := sel.Float()
	avgV, _ := avgRate.Float()
	fmt.Printf("after %d time units:\n", sys.Now())
	fmt.Printf("  alerts delivered:        %d\n", alerts)
	fmt.Printf("  last per-sensor count:   %v\n", lastCount)
	fmt.Printf("  hot-filter selectivity:  %.3f (measured periodically)\n", selV)
	fmt.Printf("  avg input rate:          %.3f elements/unit (triggered running average)\n", avgV)
	fmt.Println("\nmetadata inventory (only subscribed items have handlers):")
	fmt.Println(sys.Inventory())
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
