// Replay demonstrates reproducible experimentation: record a random
// workload to a CSV trace, replay the trace through the same query
// twice, and verify that every measured metadata value is identical
// across runs — the determinism the virtual clock and trace
// persistence provide for system profiling (Section 1's fourth
// motivating application: "metadata profiling is often useful for
// ... experimental performance evaluations").
//
// Run with:
//
//	go run ./examples/replay
package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/stream"
	"repro/pipes"
)

var schema = pipes.Schema{Name: "orders", Fields: []pipes.Field{
	{Name: "item", Type: "int"},
	{Name: "qty", Type: "int"},
}}

// run replays a trace through the demo query and returns the final
// measured metadata values.
func run(tr *stream.Trace) map[string]float64 {
	tr.Reset()
	sys := pipes.NewSystem(pipes.WithStatWindow(100))
	src := sys.Source("orders", schema, tr, 0)
	big := src.Filter("big", func(t pipes.Tuple) bool { return t[1].(int) >= 5 })
	sum := big.Window("w", 300).GroupAggregate("perItem", 0, pipes.NewSum(1))
	sum.Sink("out", nil)

	out := map[string]float64{}
	for name, sub := range map[string]*pipes.Stream{
		"selectivity": big, "stateSize": sum,
	} {
		kind := pipes.KindSelectivity
		if name == "stateSize" {
			kind = pipes.KindStateSize
		}
		s, err := sub.Subscribe(kind)
		check(err)
		defer s.Unsubscribe()
		defer func(name string, s *pipes.Subscription) {
			v, _ := s.Float()
			out[name] = v
		}(name, s)
	}
	rate, err := src.Subscribe(pipes.KindOutputRate)
	check(err)
	defer rate.Unsubscribe()
	defer func() {
		v, _ := rate.Float()
		out["rate"] = v
	}()

	sys.Run(5_000)
	return out
}

func main() {
	// Record a Poisson workload with random quantities into a trace.
	gen := pipes.NewPoisson(0, 0.1, 1000, 2026)
	gen.MakeTup = func(i int) pipes.Tuple { return pipes.Tuple{i % 5, (i * 7) % 10} }
	trace := stream.Record(gen, 0)

	// Persist to CSV and load it back.
	var buf bytes.Buffer
	check(trace.WriteCSV(&buf, schema))
	fmt.Printf("recorded %d arrivals (%d bytes of CSV)\n", trace.Len(), buf.Len())
	loaded, err := stream.ReadTraceCSV(bytes.NewReader(buf.Bytes()), schema)
	check(err)

	// Replay twice: metadata must be bit-identical.
	a := run(loaded)
	b := run(loaded)
	fmt.Printf("%-12s %14s %14s %s\n", "metadata", "run 1", "run 2", "identical")
	allSame := true
	for _, k := range []string{"rate", "selectivity", "stateSize"} {
		same := a[k] == b[k]
		allSame = allSame && same
		fmt.Printf("%-12s %14.6f %14.6f %v\n", k, a[k], b[k], same)
	}
	if !allSame {
		fmt.Println("REPLAY DIVERGED")
		os.Exit(1)
	}
	fmt.Println("replay reproduced every measurement exactly")
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
