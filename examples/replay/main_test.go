package main

import (
	"strings"
	"testing"

	"repro/internal/smoketest"
)

func TestSmoke(t *testing.T) {
	out := smoketest.Run(t, []string{"replay"}, main)
	if !strings.Contains(out, "replay reproduced every measurement exactly") {
		t.Errorf("replay did not report exact reproduction:\n%s", out)
	}
}
