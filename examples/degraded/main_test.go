package main

import (
	"strings"
	"testing"

	"repro/internal/smoketest"
)

func TestSmoke(t *testing.T) {
	out := smoketest.Run(t, []string{"degraded"}, main)
	for _, want := range []string{
		"healthy: selectivity estimate",
		"deadline exceeded",
		"quarantined: serving stale estimate 0.200",
		"still quarantined, stale for 80",
		"late results fenced, estimate still 0.200",
		"recovered: breaker closed",
		"degraded ops: timeouts=2 lateResults=2 trips=1 recoveries=1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
