// Degraded demonstrates degraded-mode maintenance: a selectivity
// estimator whose computation starts hanging (e.g. the estimator
// samples a stuck external catalog) is caught by the compute deadline,
// quarantined by the circuit breaker after repeated timeouts, and
// served from its last-good value — tagged stale, so consumers can
// tell — until a recovery probe finds it healthy again.
//
// The demo walks the full breaker lifecycle on a worker-pool updater:
//
//	healthy -> deadline timeouts -> quarantined (stale reads)
//	        -> fault heals -> backoff probe -> healthy again
//
// Late results of abandoned (hung) computations are fenced off by a
// generation counter: they are counted, never published.
//
// Run with:
//
//	go run ./examples/degraded
package main

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/pipes"
)

// estimator is the demo's faulty selectivity estimator: while the
// fault is engaged every estimate blocks at the gate (a stuck catalog
// lookup) until heal releases it.
type estimator struct {
	mu      sync.Mutex
	blocked chan struct{} // non-nil while the fault is engaged
	caught  int
}

func (e *estimator) engage() {
	e.mu.Lock()
	e.blocked = make(chan struct{})
	e.mu.Unlock()
}

func (e *estimator) heal() {
	e.mu.Lock()
	if e.blocked != nil {
		close(e.blocked)
		e.blocked = nil
	}
	e.mu.Unlock()
}

// estimate computes the selectivity estimate for [start, end). The
// value is a deterministic stand-in for a real estimator.
func (e *estimator) estimate(start, end clock.Time) (core.Value, error) {
	e.mu.Lock()
	ch := e.blocked
	if ch != nil {
		e.caught++
	}
	e.mu.Unlock()
	if ch != nil {
		<-ch // hung until the fault heals; the deadline fences us off
	}
	return 0.2 + float64(end%100)/1000, nil
}

func (e *estimator) timesCaught() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.caught
}

func main() {
	const (
		window   = 200 // estimator refresh period
		deadline = 50  // per-compute deadline
		backoff  = 100 // first recovery probe delay
	)
	sys := pipes.NewSystem(
		pipes.WithStatWindow(100),
		pipes.WithUpdaterPool(2),
		pipes.WithComputeDeadline(deadline),
		pipes.WithBreaker(pipes.BreakerPolicy{
			FailureThreshold: 2,
			FailureWindow:    100_000,
			ProbeBackoff:     backoff,
			MaxProbeBackoff:  8 * backoff,
		}),
	)
	schema := pipes.Schema{Name: "events", Fields: []pipes.Field{{Name: "v", Type: "int"}}}
	src := sys.Source("src", schema, pipes.NewConstantRate(0, 5, 0), 0.2)
	hot := src.Filter("hot", func(t pipes.Tuple) bool { return t[0].(int)%4 == 0 })
	hot.Sink("out", nil)

	est := &estimator{}
	hot.Metadata().MustDefine(&core.Definition{
		Kind: "selEstimate",
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewPeriodic(window, est.estimate), nil
		},
	})
	sub, err := hot.Subscribe("selEstimate")
	check(err)
	defer sub.Unsubscribe()
	env := sys.Env()
	health := func() pipes.HealthSnapshot {
		h, _ := hot.Metadata().Health("selEstimate")
		return h
	}

	// Phase 1 — healthy operation.
	sys.Run(window)
	env.Quiesce()
	v, _ := sub.Float()
	fmt.Printf("t=%4d healthy: selectivity estimate %.3f (state %s)\n", sys.Now(), v, health().State)

	// Phase 2 — the estimator starts hanging. Each boundary compute
	// blocks, exceeds the deadline, and counts a breaker failure.
	est.engage()
	fmt.Printf("t=%4d fault injected: estimator hangs from the next refresh on\n", sys.Now())

	sys.Run(2 * window) // boundary: the compute hangs on a pool worker
	waitUntil("first hung estimate", func() bool { return est.timesCaught() == 1 })
	sys.Run(2*window + deadline) // deadline fires: timeout #1
	env.Quiesce()
	if _, err := sub.Float(); errors.Is(err, pipes.ErrComputeTimeout) {
		fmt.Printf("t=%4d deadline exceeded: %d failure(s), state %s\n",
			sys.Now(), health().RecentFailures, health().State)
	}

	sys.Run(3 * window) // next boundary hangs too
	waitUntil("second hung estimate", func() bool { return est.timesCaught() == 2 })
	sys.Run(3*window + deadline) // timeout #2 trips the breaker
	env.Quiesce()

	// Phase 3 — quarantined: reads serve the last-good estimate,
	// tagged stale.
	v, err = sub.Float()
	if !errors.Is(err, pipes.ErrStale) {
		fmt.Fprintf(os.Stderr, "expected stale read, got %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("t=%4d quarantined: serving stale estimate %.3f (%v)\n", sys.Now(), v, err)
	sys.Run(3*window + 80)
	fmt.Printf("t=%4d still quarantined, stale for %d units\n", sys.Now(), health().StaleFor)

	// Phase 4 — the fault heals. The abandoned computations finish but
	// their late results are fenced: counted, never published.
	est.heal()
	stats := env.Stats()
	waitUntil("late results fenced", func() bool { return stats.LateResults.Load() == 2 })
	v, _ = sub.Float()
	fmt.Printf("t=%4d fault healed: %d late results fenced, estimate still %.3f\n",
		sys.Now(), stats.LateResults.Load(), v)

	// Phase 5 — the backoff probe finds the estimator healthy, closes
	// the breaker, and the refresh cadence resumes.
	sys.Run(3*window + backoff)
	env.Quiesce()
	v, err = sub.Float()
	check(err)
	fmt.Printf("t=%4d recovered: breaker closed, fresh estimate %.3f (state %s)\n",
		sys.Now(), v, health().State)

	sys.Run(5 * window)
	env.Quiesce()
	st := stats.Snapshot()
	fmt.Printf("\ndegraded ops: timeouts=%d lateResults=%d trips=%d recoveries=%d\n",
		st.Timeouts, st.LateResults, st.BreakerTrips, st.BreakerRecoveries)
}

// waitUntil polls for pool-worker progress that happens on OS
// scheduling, not on the virtual clock.
func waitUntil(what string, cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, "timed out waiting for "+what)
			os.Exit(1)
		}
		time.Sleep(time.Millisecond)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
