// Benchmarks regenerating every figure and quantitative claim of the
// paper (experiment index in DESIGN.md). Each BenchmarkE* drives the
// corresponding experiment and reports its headline numbers as custom
// metrics; run with
//
//	go test -bench=. -benchmem
//
// The printable paper-style tables are produced by cmd/mdbench.
package repro_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/bench"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/watch"
	"repro/pipes"
)

func BenchmarkE1ConcurrentPeriodicAccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunE1(8)
		if len(r.User1Naive) != 8 {
			b.Fatal("bad run")
		}
		if i == b.N-1 {
			b.ReportMetric(r.User1Naive[4], "naiveUser1Rate")
			b.ReportMetric(r.User2Naive[4], "naiveUser2Rate")
			b.ReportMetric(r.User1Periodic[4], "periodicRate")
		}
	}
}

func BenchmarkE2OnDemandAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunE2(20, 80, 10, 50)
		if i == b.N-1 {
			b.ReportMetric(r.OnDemandAvg, "onDemandAvg")
			b.ReportMetric(r.TriggeredAvg, "triggeredAvg")
			b.ReportMetric(r.TrueMean, "trueMean")
		}
	}
}

func BenchmarkE3ProvisionScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunE3([]int{50}, 0.1, 1000)
		if i == b.N-1 {
			for _, r := range rows {
				if r.Policy == "maintain-all" {
					b.ReportMetric(float64(r.UpdateWork), "maintainAllWork")
				} else {
					b.ReportMetric(float64(r.UpdateWork), "onDemandWork")
				}
			}
		}
	}
}

func BenchmarkE4FreshnessOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunE4([]clock.Duration{10, 100}, 1.0, 0.2, 500, 2000)
		if i == b.N-1 {
			b.ReportMetric(float64(rows[0].Updates), "updates@w10")
			b.ReportMetric(rows[0].MeanAbsError, "err@w10")
			b.ReportMetric(float64(rows[1].Updates), "updates@w100")
			b.ReportMetric(rows[1].MeanAbsError, "err@w100")
		}
	}
}

func BenchmarkE5TriggeredVsPeriodic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunE5([]clock.Duration{400}, 20, 2000)
		if i == b.N-1 {
			for _, r := range rows {
				if r.Mechanism == "triggered" {
					b.ReportMetric(float64(r.Updates), "triggeredUpdates")
				} else {
					b.ReportMetric(float64(r.Updates), "periodicUpdates")
				}
			}
		}
	}
}

func BenchmarkE6HandlerSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunE6([]int{16}, 500)
		if i == b.N-1 {
			for _, r := range rows {
				if r.Shared {
					b.ReportMetric(float64(r.UpdateWork), "sharedWork")
				} else {
					b.ReportMetric(float64(r.UpdateWork), "unsharedWork")
				}
			}
		}
	}
}

func BenchmarkE7DependencyResolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunE7([]int{50})
		if i == b.N-1 {
			b.ReportMetric(float64(rows[0].FirstTraversals), "firstSteps")
			b.ReportMetric(float64(rows[0].SecondTraversals), "reSubSteps")
		}
	}
}

func BenchmarkE8CostModelPropagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunE8(0.1, 100, 2000, 100)
		if i == b.N-1 {
			last := r.Samples[len(r.Samples)-1]
			b.ReportMetric(last.EstCPU, "estCPU")
			b.ReportMetric(last.MeasCPU, "measCPU")
		}
	}
}

func BenchmarkE9WorkerPool(b *testing.B) {
	for _, workers := range []int{0, 1, 2, 4, 8} {
		workers := workers
		name := "inline"
		if workers > 0 {
			name = "pool" + string(rune('0'+workers))
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := bench.RunE9([]int{workers}, 100, 5, 2000, func(fn func()) int64 {
					fn()
					return 0
				})
				if rows[0].Updates == 0 {
					b.Fatal("no updates")
				}
			}
		})
	}
}

func BenchmarkE10ChainScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunE10(1200)
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.PeakQueueBytes), r.Strategy+"PeakBytes")
			}
		}
	}
}

func BenchmarkE11LoadShedding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunE11(5, 6000)
		if i == b.N-1 {
			for _, r := range rows {
				if r.Shedding {
					b.ReportMetric(r.FinalMeasuredCPU, "sheddedCPU")
				} else {
					b.ReportMetric(r.FinalMeasuredCPU, "unsheddedCPU")
				}
			}
		}
	}
}

func BenchmarkE12SubscriptionChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunE12(100, 10, 20)
		if i == b.N-1 {
			for _, r := range rows {
				if r.AutoRemoval {
					b.ReportMetric(float64(r.UpdateWork), "autoRemovalWork")
				} else {
					b.ReportMetric(float64(r.UpdateWork), "noRemovalWork")
				}
			}
		}
	}
}

func BenchmarkE13DynamicDependencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunE13(50)
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Traversals), r.Resolution+"Steps")
			}
		}
	}
}

func BenchmarkE14InheritanceOverride(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunE14()
		if r.OverriddenMemUsage != 140 {
			b.Fatal("bad override")
		}
	}
}

func BenchmarkE15ModuleMetadata(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunE15(20, 1000)
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.MeasuredCPU, r.Impl+"CPU")
			}
		}
	}
}

func BenchmarkE16FilterReordering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.RunE16(3000)
		if i == b.N-1 {
			b.ReportMetric(r.CPUBefore, "cpuBefore")
			b.ReportMetric(r.CPUAfter, "cpuAfter")
		}
	}
}

func BenchmarkE17JoinOrderAdvisor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunE17()
		if len(rows) != 2 {
			b.Fatal("bad run")
		}
	}
}

func BenchmarkE18QoSScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunE18(3000)
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.HiLatency, r.Strategy+"HiLatency")
			}
		}
	}
}

// BenchmarkE19BatchedTicks drives N=1000 same-boundary periodic
// handlers over 4 dependency scopes through timed window boundaries,
// comparing the batched update pipeline against the per-handler
// ablation (WithPerHandlerTicks). Acceptance: the batched pipeline
// issues >= 5x fewer Updater.Submit dispatches per boundary (4 scope
// batches vs 1000 per-handler dispatches) at lower ns/op.
func BenchmarkE19BatchedTicks(b *testing.B) {
	for _, tc := range []struct{ name, mode string }{
		{"batched", "batched"},
		{"perHandler", "per-handler"},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var row bench.E19Row
			for i := 0; i < b.N; i++ {
				row = bench.RunE19Mode(tc.mode, 1000, 4, 20, func(fn func()) int64 {
					fn()
					return 0
				})
			}
			b.ReportMetric(row.SubmitsPerBoundary, "submits/boundary")
			b.ReportMetric(row.RefreshesPerBoundary, "refreshes/boundary")
		})
	}
}

// BenchmarkHealthyOverhead measures what the degraded-mode machinery
// costs when nothing is degraded: the E19 batched-tick workload (1000
// periodic handlers over 4 scopes, one window boundary per op, pool-2
// updater) with breaker tracking — and then deadline bounding —
// enabled versus the plain pipeline. The graph is built outside the
// timer so ns/op is the steady-state publish path, not subscribe-time
// setup. Acceptance: the breaker variant stays within 2% of baseline —
// its success path is one lock-free state check before the compute and
// one atomic state load after it. The deadline variant prices the
// generation fence itself — one spawned goroutine, result channel, and
// armed clock event per compute, the cost of being able to abandon a
// hung computation — which is why deadlines are opt-in (graph default
// or per-definition) for computes expensive enough to hang, not free
// insurance on trivial ones. Committed numbers live in BENCH_PR4.json.
func BenchmarkHealthyOverhead(b *testing.B) {
	const (
		handlers = 1000
		scopes   = 4
		window   = 10
	)
	for _, tc := range []struct {
		name string
		opts []core.EnvOption
	}{
		{"baseline", nil},
		{"breaker", []core.EnvOption{
			core.WithBreaker(core.DefaultBreakerPolicy),
		}},
		{"breakerAndDeadline", []core.EnvOption{
			core.WithBreaker(core.DefaultBreakerPolicy),
			core.WithComputeDeadline(1 << 20),
		}},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			vc := clock.NewVirtual()
			opts := append([]core.EnvOption{core.WithUpdater(core.NewPoolUpdater(2))}, tc.opts...)
			env := core.NewEnv(vc, opts...)
			subs := make([]*core.Subscription, 0, scopes)
			for s := 0; s < scopes; s++ {
				r := env.NewRegistry(fmt.Sprintf("op%d", s))
				deps := make([]core.DepRef, 0, handlers/scopes)
				for i := 0; i < handlers/scopes; i++ {
					kind := core.Kind(fmt.Sprintf("p%d", i))
					r.MustDefine(&core.Definition{
						Kind: kind,
						Build: func(*core.BuildContext) (core.Handler, error) {
							return core.NewPeriodic(window, func(start, end clock.Time) (core.Value, error) {
								return float64(end), nil
							}), nil
						},
					})
					deps = append(deps, core.Dep(core.Self(), kind))
				}
				r.MustDefine(&core.Definition{
					Kind: "agg",
					Deps: deps,
					Build: func(ctx *core.BuildContext) (core.Handler, error) {
						hs := make([]*core.Handle, len(deps))
						for i := range deps {
							hs[i] = ctx.Dep(i)
						}
						return core.NewTriggered(func(clock.Time) (core.Value, error) {
							var sum float64
							for _, h := range hs {
								v, err := h.Float()
								if err != nil {
									return nil, err
								}
								sum += v
							}
							return sum, nil
						}), nil
					},
				})
				sub, err := r.Subscribe("agg")
				if err != nil {
					b.Fatal(err)
				}
				subs = append(subs, sub)
			}
			// Warm-up boundary: propagation plans built, pool spun up.
			vc.Advance(window)
			env.Quiesce()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vc.Advance(window)
				env.Quiesce()
			}
			b.StopTimer()
			want := float64(handlers/scopes) * float64(env.Now())
			for _, sub := range subs {
				if got, err := sub.Float(); err != nil || got != want {
					b.Fatalf("agg = %v, %v; want %v", got, err, want)
				}
				sub.Unsubscribe()
			}
			env.Updater().Stop()
		})
	}
}

func BenchmarkA1PropagationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.RunA1([]int{10})
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Refreshes), r.Mode+"Refreshes")
			}
		}
	}
}

// BenchmarkA2ProbeGatingAblation measures the element-path cost of a
// 20-filter chain with all monitoring probes deactivated (the
// framework default when nothing is subscribed) versus force-activated
// (an always-on monitoring baseline). The two are expected to be
// nearly identical: this validates the paper's premise that "the
// overhead for counting incoming elements is low" — the expensive part
// of metadata is handler maintenance (see E3), not probing, which is
// why update windows, not per-element updates, are the scalability
// lever.
func BenchmarkA2ProbeGatingAblation(b *testing.B) {
	schema := pipes.Schema{Name: "s", Fields: []pipes.Field{{Name: "v", Type: "int"}}}
	for _, gated := range []bool{true, false} {
		name := "gatedOff"
		if !gated {
			name = "alwaysOn"
		}
		b.Run(name, func(b *testing.B) {
			sys := pipes.NewSystem(pipes.WithStatWindow(1_000_000))
			src := sys.Source("src", schema, pipes.NewConstantRate(0, 1, 0), 0)
			st := src
			var subs []*pipes.Subscription
			for i := 0; i < 20; i++ {
				st = st.Filter("f"+string(rune('a'+i)), func(pipes.Tuple) bool { return true })
				if !gated {
					// Always-on baseline: keep every measured item's
					// probes active via subscriptions.
					for _, k := range []pipes.Kind{
						pipes.KindInputRate, pipes.KindOutputRate,
						pipes.KindSelectivity, pipes.KindCountIn, pipes.KindCountOut,
					} {
						s, err := st.Subscribe(k)
						if err != nil {
							b.Fatal(err)
						}
						subs = append(subs, s)
					}
				}
			}
			st.Sink("out", nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.Run(pipes.Time((i + 1) * 100)) // 100 elements per iteration
			}
			b.StopTimer()
			for _, s := range subs {
				s.Unsubscribe()
			}
		})
	}
}

// --- Framework micro-benchmarks ---

// BenchmarkSubscribeUnsubscribe measures one subscribe/unsubscribe
// cycle over a 10-item dependency chain.
func BenchmarkSubscribeUnsubscribe(b *testing.B) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	r := env.NewRegistry("op")
	r.MustDefine(&core.Definition{
		Kind:  "k0",
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(1.0), nil },
	})
	kinds := []core.Kind{"k0"}
	for i := 1; i <= 10; i++ {
		prev := kinds[i-1]
		kind := core.Kind("k" + string(rune('0'+i%10)) + string(rune('a'+i/10)))
		r.MustDefine(&core.Definition{
			Kind: kind,
			Deps: []core.DepRef{core.Dep(core.Self(), prev)},
			Build: func(ctx *core.BuildContext) (core.Handler, error) {
				h := ctx.Dep(0)
				return core.NewTriggered(func(clock.Time) (core.Value, error) { return h.Float() }), nil
			},
		})
		kinds = append(kinds, kind)
	}
	top := kinds[len(kinds)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := r.Subscribe(top)
		if err != nil {
			b.Fatal(err)
		}
		s.Unsubscribe()
	}
}

// BenchmarkValueRead measures a metadata read per mechanism.
func BenchmarkValueRead(b *testing.B) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	r := env.NewRegistry("op")
	r.MustDefine(&core.Definition{
		Kind:  "static",
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(1.0), nil },
	})
	r.MustDefine(&core.Definition{
		Kind: "ondemand",
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewOnDemand(func(now clock.Time) (core.Value, error) { return float64(now), nil }), nil
		},
	})
	r.MustDefine(&core.Definition{
		Kind: "periodic",
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewPeriodic(10, func(a, c clock.Time) (core.Value, error) { return 1.0, nil }), nil
		},
	})
	r.MustDefine(&core.Definition{
		Kind: "triggered",
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) { return 1.0, nil }), nil
		},
	})
	for _, kind := range []core.Kind{"static", "ondemand", "periodic", "triggered"} {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			s, err := r.Subscribe(kind)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Unsubscribe()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Value(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTriggerPropagation measures one event propagating through a
// 20-item triggered chain. The chain computes pass the dependency value
// through unchanged (no per-refresh interface boxing) and the base
// cycles runtime-interned small ints, so the reported allocs/op expose
// the propagation machinery itself: with cached propagation plans,
// steady-state propagation over an unchanged graph is allocation-free.
func BenchmarkTriggerPropagation(b *testing.B) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	r := env.NewRegistry("op")
	v := 0
	r.MustDefine(&core.Definition{
		Kind:   "base",
		Events: []string{"changed"},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) { return v, nil }), nil
		},
	})
	prev := core.Kind("base")
	for i := 0; i < 20; i++ {
		kind := core.Kind("t" + string(rune('a'+i)))
		p := prev
		r.MustDefine(&core.Definition{
			Kind: kind,
			Deps: []core.DepRef{core.Dep(core.Self(), p)},
			Build: func(ctx *core.BuildContext) (core.Handler, error) {
				h := ctx.Dep(0)
				return core.NewTriggered(func(clock.Time) (core.Value, error) { return h.Value() }), nil
			},
		})
		prev = kind
	}
	s, err := r.Subscribe(prev)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Unsubscribe()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v = (v + 1) % 256
		r.FireEvent("changed")
	}
	b.StopTimer()
	if f, err := s.Float(); err != nil || int(f) != v {
		b.Fatalf("chain tail = %v, %v; want %d", f, err, v)
	}
}

// BenchmarkValueReadParallel measures concurrent metadata reads of one
// shared periodic item from many goroutines (run with -cpu 1,4,8). The
// read path is lock-free (atomic snapshot), so throughput should scale
// with cores instead of serializing on a lock.
func BenchmarkValueReadParallel(b *testing.B) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	r := env.NewRegistry("op")
	r.MustDefine(&core.Definition{
		Kind: "periodic",
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewPeriodic(10, func(a, c clock.Time) (core.Value, error) { return 1.0, nil }), nil
		},
	})
	s, err := r.Subscribe("periodic")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Unsubscribe()
	vc.Advance(100)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := s.Value(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkE20MemoizedReads measures the hot-item read fan-out of E20
// as a parallel read benchmark (run with -cpu 1,8): one Pure on-demand
// item summing four static dependencies, read from every benchmark
// goroutine. With memo=on the steady state is a lock-free stamped-memo
// hit (0 allocs/op); with memo=off every read takes the handler mutex
// and recomputes, so the goroutines serialize.
func BenchmarkE20MemoizedReads(b *testing.B) {
	for _, memo := range []bool{true, false} {
		name := "memo=off"
		var opts []core.EnvOption
		if memo {
			name = "memo=on"
			opts = append(opts, core.WithMemoizedOnDemand())
		}
		b.Run(name, func(b *testing.B) {
			vc := clock.NewVirtual()
			env := core.NewEnv(vc, opts...)
			r := env.NewRegistry("op")
			const deps = 4
			drefs := make([]core.DepRef, 0, deps)
			for i := 0; i < deps; i++ {
				kind := core.Kind("d" + string(rune('0'+i)))
				v := float64(i + 1)
				r.MustDefine(&core.Definition{
					Kind:  kind,
					Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(v), nil },
				})
				drefs = append(drefs, core.Dep(core.Self(), kind))
			}
			r.MustDefine(&core.Definition{
				Kind: "hot",
				Deps: drefs,
				Pure: true,
				Build: func(ctx *core.BuildContext) (core.Handler, error) {
					hs := make([]*core.Handle, len(drefs))
					for i := range drefs {
						hs[i] = ctx.Dep(i)
					}
					return core.NewOnDemand(func(clock.Time) (core.Value, error) {
						var sum float64
						for _, h := range hs {
							f, err := h.Float()
							if err != nil {
								return nil, err
							}
							sum += f
						}
						return sum, nil
					}), nil
				},
			})
			s, err := r.Subscribe("hot")
			if err != nil {
				b.Fatal(err)
			}
			defer s.Unsubscribe()
			if v, err := s.Float(); err != nil || v != 10 {
				b.Fatalf("hot = %v, %v; want 10", v, err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := s.Value(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkE21DeltaPropagation measures the fan-in maintenance cost of
// E21: one DeltaSum aggregate over N dependencies, one edge
// republishing per iteration. delta=on patches the accumulator with
// the (old, new) pair in O(1) per fire — ns/op is flat in N and the
// steady state is allocation-free; delta=off (WithoutDeltaPropagation)
// re-folds all N dependencies per fire, so ns/op grows linearly.
func BenchmarkE21DeltaPropagation(b *testing.B) {
	for _, mode := range []string{"delta=on", "delta=off"} {
		for _, n := range []int{100, 1000} {
			b.Run(fmt.Sprintf("%s/N=%d", mode, n), func(b *testing.B) {
				m := "delta"
				if mode == "delta=off" {
					m = "fold"
				}
				r, step, sub, _ := bench.E21System(m, n)
				defer sub.Unsubscribe()
				*step = 1
				r.FireEvent("tick")
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					*step = i
					r.FireEvent("tick")
				}
				b.StopTimer()
				if v, err := sub.Float(); err != nil || v != bench.E21Want(b.N-1, n) {
					b.Fatalf("agg = %v, %v; want %v", v, err, bench.E21Want(b.N-1, n))
				}
			})
		}
	}
}

// BenchmarkE22AdaptiveMaintenance measures the adaptive-maintenance
// machinery of E22 on its steady state: mode=* sub-benchmarks run one
// read-heavy round (100 reads, 1 write, 10-unit advance — plus one
// controller step in adaptive mode, which has converged to triggered
// and stays there) per iteration, so adaptive-vs-triggered is the
// closed loop's sampling overhead on an already-optimal configuration.
// The migrate sub-benchmark prices the live-migration primitive itself:
// one on-demand <-> triggered round-trip (two Migrates) per iteration
// on a subscribed item with a live dependency.
func BenchmarkE22AdaptiveMaintenance(b *testing.B) {
	for _, mode := range []string{"ondemand", "triggered", "adaptive"} {
		b.Run("mode="+mode, func(b *testing.B) {
			r, sub, _, writes, env := bench.E22System(mode)
			defer sub.Unsubscribe()
			vc := env.Clock().(*clock.Virtual)
			var ctrl *adapt.Controller
			if mode == "adaptive" {
				ctrl = adapt.New(r, adapt.Config{Interval: 10, Hysteresis: 0.2, MinDwell: -1})
				if err := ctrl.Track("hot", 0, 0); err != nil {
					b.Fatal(err)
				}
			}
			round := func() {
				for i := 0; i < 100; i++ {
					if _, err := sub.Float(); err != nil {
						b.Fatal(err)
					}
				}
				*writes++
				r.FireEvent("w")
				vc.Advance(10)
				if ctrl != nil {
					if _, err := ctrl.Step(); err != nil {
						b.Fatal(err)
					}
				}
			}
			for i := 0; i < 10; i++ {
				round() // converge the controller before timing
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				round()
			}
			b.StopTimer()
			if v, err := sub.Float(); err != nil || v != float64(*writes)+1 {
				b.Fatalf("hot = %v, %v; want %v", v, err, float64(*writes)+1)
			}
		})
	}
	b.Run("migrate", func(b *testing.B) {
		r, sub, _, writes, _ := bench.E22System("ondemand")
		defer sub.Unsubscribe()
		*writes = 7
		r.FireEvent("w")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := r.Migrate("hot", core.TriggeredMechanism, 0); err != nil {
				b.Fatal(err)
			}
			if err := r.Migrate("hot", core.OnDemandMechanism, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if v, err := sub.Float(); err != nil || v != 8 {
			b.Fatalf("hot = %v, %v; want 8", v, err)
		}
	})
}

// BenchmarkE23WatchFanout runs the watch fan-out experiment: one item,
// watchers=* subscribers, a burst of 1000 back-to-back publications
// per run. The callback baseline pays O(watchers) inline per publish;
// the hub pays O(1) per publish and delivers through a constant
// number of coalesced sweeps per burst, so callbackNsPerPublish grows
// with the subscriber count while hubNsPerPublish amortizes toward
// the bare publish cost.
func BenchmarkE23WatchFanout(b *testing.B) {
	elapsed := func(fn func()) int64 {
		start := time.Now()
		fn()
		return int64(time.Since(start))
	}
	const publishes = 1000
	for _, watchers := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("watchers=%d", watchers), func(b *testing.B) {
			var cb, hub bench.E23Row
			for i := 0; i < b.N; i++ {
				// Interleaved A/B: baseline then hub within each
				// iteration.
				cb = bench.RunE23Mode("callback", watchers, publishes, elapsed)
				hub = bench.RunE23Mode("hub", watchers, publishes, elapsed)
				if cb.Delivered != int64(watchers*publishes) {
					b.Fatalf("callback delivered %d, want %d", cb.Delivered, watchers*publishes)
				}
				if hub.Delivered < int64(watchers) {
					b.Fatalf("hub delivered %d, want >= %d", hub.Delivered, watchers)
				}
			}
			b.ReportMetric(float64(cb.NsPerPublish), "callbackNsPerPublish")
			b.ReportMetric(float64(hub.NsPerPublish), "hubNsPerPublish")
			b.ReportMetric(float64(cb.NsPerPublish)/float64(max64(hub.NsPerPublish, 1)), "speedup")
		})
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// BenchmarkE23PublishHotPath prices what one publication costs the
// publisher with the hub attached, steady state: watchers=0 is the
// bare propagation plane (no sink installed — the A/B baseline for
// the version-gate overhead), watchers=N has N subscribers with full
// 2-slot rings, so every publication takes the complete hot path
// (CAS-max version, dirty election, sweeper kick) plus a sweeper
// delivery that coalesces-to-latest into the full rings. The hub adds
// no allocations on this path: allocs/op must match the watchers=0
// baseline (the boxing of each recomputed value, which the core pays
// with or without a watch sink).
func BenchmarkE23PublishHotPath(b *testing.B) {
	for _, watchers := range []int{0, 1000} {
		b.Run(fmt.Sprintf("watchers=%d", watchers), func(b *testing.B) {
			env, r, publish := bench.E23System()
			sub, err := r.Subscribe("val")
			if err != nil {
				b.Fatal(err)
			}
			defer sub.Unsubscribe()
			var h *watch.Hub
			if watchers > 0 {
				h = watch.NewHub(env)
				defer h.Close()
				for i := 0; i < watchers; i++ {
					w, err := h.Watch(r, "val", watch.Options{Since: 1, Buffer: 2})
					if err != nil {
						b.Fatal(err)
					}
					defer w.Close()
				}
				// Fill every ring so steady state is the
				// coalesce-to-latest overwrite path.
				publish()
				publish()
				h.Barrier()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				publish()
			}
			b.StopTimer()
			if h != nil {
				h.Barrier()
			}
		})
	}
}

// BenchmarkSubscribeChurnParallel measures subscribe/unsubscribe churn
// over independent registries from many goroutines (run with
// -cpu 1,4,8). Each registry is its own dependency-scope component, so
// with per-scope structural locks the churn parallelizes; under a
// global graph lock it serializes.
func BenchmarkSubscribeChurnParallel(b *testing.B) {
	vc := clock.NewVirtual()
	env := core.NewEnv(vc)
	const nregs = 64
	regs := make([]*core.Registry, nregs)
	for i := range regs {
		r := env.NewRegistry("op" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		r.MustDefine(&core.Definition{
			Kind:  "base",
			Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(1.0), nil },
		})
		r.MustDefine(&core.Definition{
			Kind: "derived",
			Deps: []core.DepRef{core.Dep(core.Self(), "base")},
			Build: func(ctx *core.BuildContext) (core.Handler, error) {
				h := ctx.Dep(0)
				return core.NewTriggered(func(clock.Time) (core.Value, error) { return h.Float() }), nil
			},
		})
		regs[i] = r
	}
	var next int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := regs[int(atomic.AddInt64(&next, 1))%nregs]
		for pb.Next() {
			s, err := r.Subscribe("derived")
			if err != nil {
				b.Error(err)
				return
			}
			s.Unsubscribe()
		}
	})
}

// BenchmarkJoinThroughput measures end-to-end elements/sec through a
// window join with metadata monitoring attached.
func BenchmarkJoinThroughput(b *testing.B) {
	schema := pipes.Schema{Name: "s", Fields: []pipes.Field{{Name: "v", Type: "int"}}}
	for i := 0; i < b.N; i++ {
		sys := pipes.NewSystem()
		l := sys.Source("L", schema, pipes.NewConstantRate(0, 2, 1000), 0.5)
		r := sys.Source("R", schema, pipes.NewConstantRate(1, 2, 1000), 0.5)
		j := l.Window("lw", 50).Join(r.Window("rw", 50), "join",
			func(a, c pipes.Tuple) bool { return a[0] == c[0] })
		n := 0
		j.Sink("out", func(pipes.Element) { n++ })
		cpu, err := j.Subscribe(pipes.KindMeasuredCPU)
		if err != nil {
			b.Fatal(err)
		}
		// Run to a fixed horizon: the subscribed periodic handler
		// keeps its update ticker alive, so RunToCompletion would
		// never go idle.
		sys.Run(2100)
		cpu.Unsubscribe()
		if n == 0 {
			b.Fatal("no join results")
		}
	}
}

// BenchmarkProbeOverhead measures the element-path cost of an inactive
// vs active monitoring probe — the "overhead for counting incoming
// elements is low" claim.
func BenchmarkProbeOverhead(b *testing.B) {
	var c core.Counter
	b.Run("inactive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	c.Activate()
	b.Run("active", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
}

var _ = stream.NewConstantRate

// BenchmarkE24Recovery runs the durable-restart experiment: each
// iteration seeds a durable plane of 1000 subscribed items, then times
// a cold start (subscribe + inline compute per item before the first
// read) against a warm start (checkpoint load, re-pin, serve every
// pre-shutdown value stale with zero computes). The headline metric is
// the warm/cold speedup of time-to-first-read.
func BenchmarkE24Recovery(b *testing.B) {
	elapsed := func(fn func()) int64 {
		start := time.Now()
		fn()
		return int64(time.Since(start))
	}
	const items = 1000
	var cold, warm bench.E24Row
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunE24(b.TempDir(), items, elapsed)
		if err != nil {
			b.Fatal(err)
		}
		cold, warm = rows[0], rows[1]
		if cold.Computes < items {
			b.Fatalf("cold computed %d times, want >= %d", cold.Computes, items)
		}
		if warm.Computes != 0 || warm.Restored != items {
			b.Fatalf("warm computes=%d restored=%d, want 0/%d", warm.Computes, warm.Restored, items)
		}
	}
	b.ReportMetric(float64(cold.NsTotal), "coldNsToFirstRead")
	b.ReportMetric(float64(warm.NsTotal), "warmNsToFirstRead")
	b.ReportMetric(float64(cold.NsTotal)/float64(max64(warm.NsTotal, 1)), "speedup")
}

// BenchmarkE25MuxFanout prices the mux watch transport against the
// legacy per-watch SSE path: N watches on one item, a 50-publication
// burst, timed until every watch has seen the final version. The mux
// session must carry everything on one connection and amortize its
// writes — under burst the batched binary framing packs well over 8
// events per frame (i.e. under 1/8th of a write per event), where SSE
// pays one flush per event per connection.
func BenchmarkE25MuxFanout(b *testing.B) {
	const publishes = 50
	for _, watches := range []int{256, 1024} {
		b.Run(fmt.Sprintf("watches=%d", watches), func(b *testing.B) {
			var mux, sse bench.E25Row
			for i := 0; i < b.N; i++ {
				// Interleaved A/B: ablation then mux within each
				// iteration.
				sse = bench.RunE25Mode("sse", watches, publishes)
				mux = bench.RunE25Mode("mux", watches, publishes)
				if mux.Conns != 1 || sse.Conns != watches {
					b.Fatalf("conns: mux=%d sse=%d, want 1/%d", mux.Conns, sse.Conns, watches)
				}
				if mux.EventsPerFrame < 8 {
					b.Fatalf("mux events/frame = %.1f under burst, want >= 8", mux.EventsPerFrame)
				}
			}
			b.ReportMetric(mux.EventsPerFrame, "eventsPerFrame")
			b.ReportMetric(float64(mux.NsPerEvent), "muxNsPerEvent")
			b.ReportMetric(float64(sse.NsPerEvent), "sseNsPerEvent")
			b.ReportMetric(float64(sse.NsPerEvent)/float64(max64(mux.NsPerEvent, 1)), "speedup")
		})
	}
}
