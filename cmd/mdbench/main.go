// Command mdbench regenerates the paper's figures and quantitative
// claims as printable tables (experiment index in DESIGN.md).
//
// Usage:
//
//	mdbench -exp e1          # one experiment
//	mdbench -exp all         # every experiment
//	mdbench -list            # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/bench"
	"repro/internal/clock"
)

// experiments maps experiment ids to their drivers.
var experiments = map[string]struct {
	desc string
	run  func() *bench.Table
}{
	"e1": {"Figure 4: concurrent periodic access", func() *bench.Table {
		return bench.RunE1(8).Table()
	}},
	"e2": {"Figure 5: on-demand aggregation", func() *bench.Table {
		return bench.RunE2(20, 80, 10, 50).Table()
	}},
	"e3": {"provision scalability (pub-sub vs maintain-all)", func() *bench.Table {
		return bench.E3Table(bench.RunE3([]int{10, 50, 100, 200, 400}, 0.1, 2000))
	}},
	"e4": {"freshness vs overhead (window sweep)", func() *bench.Table {
		return bench.E4Table(bench.RunE4([]clock.Duration{10, 20, 50, 100, 200, 500}, 1.0, 0.2, 500, 8000))
	}},
	"e5": {"triggered vs periodic maintenance", func() *bench.Table {
		return bench.E5Table(bench.RunE5([]clock.Duration{25, 50, 100, 200, 400, 800}, 20, 8000))
	}},
	"e6": {"handler sharing across consumers", func() *bench.Table {
		return bench.E6Table(bench.RunE6([]int{1, 2, 4, 8, 16, 32, 64}, 1000))
	}},
	"e7": {"automated dependency inclusion", func() *bench.Table {
		return bench.E7Table(bench.RunE7([]int{1, 2, 5, 10, 20, 50, 100, 200}))
	}},
	"e8": {"Figure 3: cost model under window change", func() *bench.Table {
		return bench.RunE8(0.1, 100, 4000, 200).Table()
	}},
	"e9": {"periodic update worker pool", func() *bench.Table {
		elapsed := func(fn func()) int64 {
			start := time.Now()
			fn()
			return time.Since(start).Nanoseconds()
		}
		return bench.E9Table(bench.RunE9([]int{0, 1, 2, 4, 8}, 400, 25, 20000, elapsed))
	}},
	"e10": {"Chain scheduling vs baselines", func() *bench.Table {
		return bench.E10Table(bench.RunE10(1200))
	}},
	"e11": {"load shedding under overload", func() *bench.Table {
		return bench.E11Table(bench.RunE11(5, 12000))
	}},
	"e12": {"subscription churn and auto-removal", func() *bench.Table {
		return bench.E12Table(bench.RunE12(200, 10, 20))
	}},
	"e13": {"dynamic dependency resolution", func() *bench.Table {
		return bench.E13Table(bench.RunE13(50))
	}},
	"e14": {"metadata inheritance and redefinition", func() *bench.Table {
		return bench.RunE14().Table()
	}},
	"e15": {"exchangeable module metadata", func() *bench.Table {
		return bench.E15Table(bench.RunE15(20, 3000))
	}},
	"e16": {"adaptive filter reordering (optimizer)", func() *bench.Table {
		return bench.RunE16(3000).Table()
	}},
	"e17": {"join-order advisor on rate metadata", func() *bench.Table {
		return bench.E17Table(bench.RunE17())
	}},
	"e18": {"QoS-priority scheduling vs round-robin", func() *bench.Table {
		return bench.E18Table(bench.RunE18(3000))
	}},
	"e19": {"batched update pipeline vs per-handler ticks", func() *bench.Table {
		elapsed := func(fn func()) int64 {
			start := time.Now()
			fn()
			return time.Since(start).Nanoseconds()
		}
		return bench.E19Table(bench.RunE19(1000, 4, 50, elapsed))
	}},
	"e20": {"hot-item read fan-out: memoized vs recompute", func() *bench.Table {
		elapsed := func(fn func()) int64 {
			start := time.Now()
			fn()
			return time.Since(start).Nanoseconds()
		}
		switch *memoFlag {
		case "both":
			return bench.E20Table(bench.RunE20(8, 200000, 4, elapsed))
		case "on":
			return bench.E20Table([]bench.E20Row{bench.RunE20Mode("memoized", 8, 200000, 4, elapsed)})
		case "off":
			return bench.E20Table([]bench.E20Row{bench.RunE20Mode("recompute", 8, 200000, 4, elapsed)})
		default:
			fmt.Fprintln(os.Stderr, `-memo must be "both", "on", or "off"`)
			os.Exit(2)
			return nil
		}
	}},
	"e21": {"incremental delta propagation vs full fold", func() *bench.Table {
		elapsed := func(fn func()) int64 {
			start := time.Now()
			fn()
			return time.Since(start).Nanoseconds()
		}
		var rows []bench.E21Row
		for _, n := range []int{100, 1000} {
			switch *deltaFlag {
			case "both":
				rows = append(rows, bench.RunE21(n, 100000, elapsed)...)
			case "on":
				rows = append(rows, bench.RunE21Mode("delta", n, 100000, elapsed))
			case "off":
				rows = append(rows, bench.RunE21Mode("fold", n, 100000, elapsed))
			default:
				fmt.Fprintln(os.Stderr, `-delta must be "both", "on", or "off"`)
				os.Exit(2)
			}
		}
		return bench.E21Table(rows)
	}},
	"e22": {"closed-loop adaptive maintenance across a phase shift", func() *bench.Table {
		elapsed := func(fn func()) int64 {
			start := time.Now()
			fn()
			return time.Since(start).Nanoseconds()
		}
		switch *adaptFlag {
		case "both":
			return bench.E22Table(bench.RunE22(40, elapsed))
		case "on":
			return bench.E22Table([]bench.E22Row{bench.RunE22Mode("adaptive", 40, elapsed)})
		case "off":
			return bench.E22Table([]bench.E22Row{
				bench.RunE22Mode("ondemand", 40, elapsed),
				bench.RunE22Mode("triggered", 40, elapsed),
			})
		default:
			fmt.Fprintln(os.Stderr, `-adapt must be "both", "on", or "off"`)
			os.Exit(2)
			return nil
		}
	}},
	"e23": {"watch fan-out: epoch-diff hub vs per-subscriber callbacks", func() *bench.Table {
		if *watchersFlag <= 0 {
			fmt.Fprintln(os.Stderr, "-watchers must be > 0")
			os.Exit(2)
		}
		elapsed := func(fn func()) int64 {
			start := time.Now()
			fn()
			return time.Since(start).Nanoseconds()
		}
		counts := []int{1000, 10000, *watchersFlag}
		if *watchersFlag <= 10000 {
			counts = []int{*watchersFlag}
		}
		return bench.E23Table(bench.RunE23(counts, 1000, elapsed))
	}},
	"e24": {"durable restart: warm recovery vs cold recompute", func() *bench.Table {
		elapsed := func(fn func()) int64 {
			start := time.Now()
			fn()
			return time.Since(start).Nanoseconds()
		}
		dir, err := os.MkdirTemp("", "mdbench-e24-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		rows, err := bench.RunE24(dir, *itemsFlag, elapsed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return bench.E24Table(rows)
	}},
	"e25": {"mux watch transport: one connection vs per-watch SSE", func() *bench.Table {
		if *watchesFlag <= 0 {
			fmt.Fprintln(os.Stderr, "-watches must be > 0")
			os.Exit(2)
		}
		counts := []int{100, 1000, *watchesFlag}
		if *watchesFlag <= 1000 {
			counts = []int{*watchesFlag}
		}
		return bench.E25Table(bench.RunE25(counts, 200))
	}},
	"a1": {"ablation: topological vs naive propagation", func() *bench.Table {
		return bench.A1Table(bench.RunA1([]int{2, 4, 6, 8, 10, 12}))
	}},
	"c1": {"contention: parallel reads & churn across dependency scopes", func() *bench.Table {
		if *workersFlag < 0 {
			fmt.Fprintln(os.Stderr, "-workers must be >= 0 (0 runs the inline updater)")
			os.Exit(2)
		}
		elapsed := func(fn func()) int64 {
			start := time.Now()
			fn()
			return time.Since(start).Nanoseconds()
		}
		return bench.C1Table(bench.RunC1([]int{1, 2, 4, 8}, 64, 100000, *workersFlag, elapsed))
	}},
	"f2": {"Figure 2: metadata taxonomy, live", bench.RunF2},
}

// workersFlag sets the updater pool size for experiments that take one
// (c1); 0 selects the inline updater.
var workersFlag = flag.Int("workers", 2, "updater worker pool size for c1 (0 = inline)")

// memoFlag is the e20 memoization ablation: run both modes, or only the
// memoized / recompute-per-access read path.
var memoFlag = flag.String("memo", "both", `e20 read-path ablation: "both", "on", or "off"`)

// deltaFlag is the e21 delta-propagation ablation: run both modes, or
// only the O(1) pair-apply / full-fold maintenance path.
var deltaFlag = flag.String("delta", "both", `e21 delta-propagation ablation: "both", "on", or "off"`)

// adaptFlag is the e22 adaptive-maintenance ablation: run the statics
// and the adaptive controller, only the adaptive run, or only the two
// static configurations.
var adaptFlag = flag.String("adapt", "both", `e22 adaptive-maintenance ablation: "both", "on" (adaptive only), or "off" (statics only)`)

// watchersFlag is e23's largest subscriber count; counts at or below
// 10000 run only that count, larger values run 1000/10000/N.
var watchersFlag = flag.Int("watchers", 100000, "e23 watch fan-out subscriber count")

// itemsFlag is e24's durable-plane size (subscribed items per start).
var itemsFlag = flag.Int("items", 1000, "e24 durable restart item count")

// watchesFlag is e25's largest watch count; values at or below 1000
// run only that count, larger values run 100/1000/N (the per-watch
// SSE ablation is skipped above bench.E25SSEConnCap connections).
var watchesFlag = flag.Int("watches", 10000, "e25 mux transport watch count")

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e25, a1, c1, f2, all)")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	ids := make([]string, 0, len(experiments))
	for id := range experiments {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})

	if *list {
		for _, id := range ids {
			fmt.Printf("%-4s %s\n", id, experiments[id].desc)
		}
		return
	}
	if *exp == "all" {
		for _, id := range ids {
			experiments[id].run().Fprint(os.Stdout)
		}
		return
	}
	e, ok := experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	e.run().Fprint(os.Stdout)
}
