package main

import (
	"strings"
	"testing"

	"repro/internal/smoketest"
)

func TestSmoke(t *testing.T) {
	out := smoketest.Run(t, []string{"mdbench", "-list"}, main)
	for _, id := range []string{"e1", "e18", "a1", "c1", "f2"} {
		if !strings.Contains(out, id+" ") && !strings.Contains(out, id+"  ") {
			t.Errorf("experiment list missing %q:\n%s", id, out)
		}
	}
	if !strings.Contains(out, "Figure 4: concurrent periodic access") {
		t.Errorf("experiment list missing e1 description:\n%s", out)
	}
}
