// Command mdserve runs a small wall-clock demo pipeline and exposes
// its metadata over HTTP/SSE via the watch hub — the network face of
// the Section 2.5 monitoring story. Clients (e.g. mdtop -connect)
// subscribe to per-item version streams and receive snapshot-then-delta
// catch-up followed by coalesced live updates.
//
// Usage:
//
//	mdserve                      # serve on localhost:7171 until interrupted
//	mdserve -addr :8080          # serve elsewhere
//	mdserve -seconds 10          # serve for 10 seconds, then exit
//	mdserve -durable ./mdstate   # persist the metadata plane; restarts
//	                             # recover topology + last-good values
//	mdserve -relay URL           # no local pipeline: mirror the mdserve
//	                             # at URL over ONE upstream mux session
//	                             # and re-serve its items here
//
// With -durable, SIGINT/SIGTERM triggers a graceful shutdown: the HTTP
// server drains open SSE streams under a deadline and a final
// checkpoint is written, so a restarted mdserve resumes with the same
// pins and version streams (since-based watch catch-up keeps working
// across the restart).
//
// With -relay, this instance is a fan-out tier: however many clients
// watch here, the upstream pays one connection and one event per
// publication. If the upstream restarts, the relay reconnects and
// resumes every watch from its last seen version (one snapshot each).
//
// Endpoints: /watch?registry=N&kind=K[&since=V], /mux, /mux/watch,
// /mux/stream, /items, /stats.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/persist"
	"repro/internal/stream"
	"repro/internal/watch"
)

func main() {
	addr := flag.String("addr", "localhost:7171", "listen address")
	seconds := flag.Int("seconds", 0, "serve for this many seconds, then exit (0 = until interrupted)")
	durable := flag.String("durable", "", "directory for the durable metadata plane (empty = in-memory only)")
	relay := flag.String("relay", "", "serve as a relay mirroring the mdserve at this base URL (no local pipeline)")
	flag.Parse()

	if *relay != "" {
		rs, err := startRelay(*addr, *relay, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *seconds > 0 {
			time.Sleep(time.Duration(*seconds) * time.Second)
			rs.Shutdown()
			return
		}
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		<-stop
		rs.Shutdown()
		return
	}

	d, err := startDemo(*addr, *durable, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *seconds > 0 {
		time.Sleep(time.Duration(*seconds) * time.Second)
		d.Shutdown(os.Stdout)
		return
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	d.Shutdown(os.Stdout)
}

// relayServer is a running mdserve -relay instance.
type relayServer struct {
	// URL is the server's base URL with the actually bound address.
	URL string

	hs     *http.Server
	relay  *watch.Relay
	cancel context.CancelFunc
}

// startRelay mirrors the mdserve at upstream through one mux session
// and re-serves its items on addr.
func startRelay(addr, upstream string, out io.Writer) (*relayServer, error) {
	ctx, cancel := context.WithCancel(context.Background())
	r, err := watch.NewRelay(ctx, upstream, watch.RelayOptions{
		OnResume: func(watches int) {
			fmt.Fprintf(out, "mdserve: relay resumed upstream session (%d watches, one snapshot each)\n", watches)
		},
	})
	if err != nil {
		cancel()
		return nil, err
	}
	srv := watch.NewSourceServer(r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		r.Close()
		cancel()
		return nil, err
	}
	rs := &relayServer{
		URL:    "http://" + ln.Addr().String(),
		hs:     &http.Server{Handler: srv.Handler()},
		relay:  r,
		cancel: cancel,
	}
	fmt.Fprintf(out, "mdserve: relaying %s on %s (%d watches over 1 upstream connection)\n",
		upstream, rs.URL, r.Watches())
	go rs.hs.Serve(ln)
	return rs, nil
}

// Shutdown stops the relay: the upstream session and local watchers
// close first (ending open streams so the HTTP server can drain).
func (rs *relayServer) Shutdown() {
	rs.relay.Close()
	rs.cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	if err := rs.hs.Shutdown(ctx); err != nil {
		rs.hs.Close()
	}
	cancel()
}

// demo is a running mdserve instance: a wall-clock pipeline, a watch
// hub over its registries, an HTTP server, and (optionally) a durable
// metadata plane.
type demo struct {
	// URL is the server's base URL with the actually bound address.
	URL string

	hs      *http.Server
	hub     *watch.Hub
	rc      *clock.Real
	plane   *persist.Plane
	release []func()
}

// startDemo builds the pipeline (src -> even filter -> sink, arrivals
// every 10 ms, periodic stats once per second) and starts serving its
// metadata on addr. The demo items are pinned by server-side
// subscriptions so their version streams survive client churn. When
// dir is non-empty the metadata plane is durable: a prior instance's
// checkpoint + WAL are recovered first (re-creating its pins, with
// checkpointed items serving last-good values until recomputed), and
// the demo pins are only made on a fresh directory — a recovered plane
// already carries them.
func startDemo(addr, dir string, out io.Writer) (*demo, error) {
	rc := clock.NewReal()
	var envOpts []core.EnvOption
	if dir != "" {
		// Recovery serves checkpointed values through quarantine, which
		// needs the breaker machinery armed.
		envOpts = append(envOpts, core.WithBreaker(core.DefaultBreakerPolicy))
	}
	env := core.NewEnv(rc, envOpts...)
	g := graph.New(env)

	schema := stream.Schema{Name: "ticks", Fields: []stream.Field{{Name: "v", Type: "int"}}}
	src := ops.NewSource(g, "src", schema, 0, 1000)
	f := ops.NewFilter(g, "even", schema, func(tp stream.Tuple) bool { return tp[0].(int)%2 == 0 }, 1000)
	sink := ops.NewSink(g, "sink", schema, nil, 0, 0, 1000)
	g.Connect(src, f)
	g.Connect(f, sink)

	d := &demo{rc: rc}
	recovered := false
	if dir != "" {
		plane, rs, err := persist.Open(env, dir, persist.Options{},
			src.Registry(), f.Registry(), sink.Registry())
		if err != nil {
			d.Close()
			return nil, err
		}
		d.plane = plane
		recovered = rs.Subscribed > 0
		if rs.Recovered {
			fmt.Fprintf(out, "mdserve: recovered plane from %s (ckpt seq %d, %d WAL records, %d subs, %d items restored stale)\n",
				dir, rs.CheckpointSeq, rs.WALRecords, rs.Subscribed, rs.Restored)
		}
	}
	if !recovered {
		for _, pin := range []struct {
			reg  *core.Registry
			kind core.Kind
		}{
			{src.Registry(), ops.KindOutputRate},
			{f.Registry(), ops.KindInputRate},
			{f.Registry(), ops.KindSelectivity},
			{f.Registry(), ops.KindAvgInputRate},
		} {
			sub, err := pin.reg.Subscribe(pin.kind)
			if err != nil {
				d.Close()
				return nil, err
			}
			d.release = append(d.release, sub.Unsubscribe)
		}
	}

	// Arrivals every 10 ms, delivered straight through the operators.
	i := 0
	var arrive func(now clock.Time)
	arrive = func(now clock.Time) {
		el := src.Emit(stream.NewElement(stream.Tuple{i}, now))
		for _, o := range f.Process(el, 0) {
			sink.Process(o, 0)
		}
		i++
		rc.After(10, arrive)
	}
	rc.After(10, arrive)

	d.hub = watch.NewHub(env)
	srv := watch.NewServer(d.hub, env, src.Registry(), f.Registry(), sink.Registry())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		d.Close()
		return nil, err
	}
	d.URL = "http://" + ln.Addr().String()
	fmt.Fprintf(out, "mdserve: listening on %s (watch: /watch?registry=%s&kind=%s)\n",
		d.URL, f.Registry().ID(), ops.KindInputRate)
	d.hs = &http.Server{Handler: srv.Handler()}
	go d.hs.Serve(ln)
	return d, nil
}

// Shutdown stops the demo gracefully: the hub closes first (ending
// open SSE loops so the HTTP server can drain), the server gets a 2 s
// drain deadline before being cut, and — when durable — a final
// checkpoint is written so the next start resumes exactly here.
func (d *demo) Shutdown(out io.Writer) {
	if d.hub != nil {
		d.hub.Close() // wakes every SSE handler via its Done channel
		d.hub = nil
	}
	if d.hs != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := d.hs.Shutdown(ctx); err != nil {
			d.hs.Close()
		}
		cancel()
		d.hs = nil
	}
	// Close the plane before releasing pins: the final checkpoint must
	// carry the pinned subscriptions (and Close detaches the journal,
	// so the releases below are not recorded as unsubscribes).
	if d.plane != nil {
		if err := d.plane.Close(); err != nil {
			fmt.Fprintf(out, "mdserve: final checkpoint failed: %v\n", err)
		} else {
			fmt.Fprintln(out, "mdserve: final checkpoint written")
		}
		d.plane = nil
	}
	for _, rel := range d.release {
		rel()
	}
	d.release = nil
	d.rc.Stop()
}

// Close stops everything abruptly (dropping open SSE streams, no final
// checkpoint) — the error-path cleanup; tests use it to simulate a
// crash of a durable instance.
func (d *demo) Close() {
	if d.hs != nil {
		d.hs.Close()
	}
	if d.hub != nil {
		d.hub.Close()
	}
	for _, rel := range d.release {
		rel()
	}
	if d.plane != nil {
		d.plane.Abandon()
	}
	d.rc.Stop()
}
