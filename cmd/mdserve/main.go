// Command mdserve runs a small wall-clock demo pipeline and exposes
// its metadata over HTTP/SSE via the watch hub — the network face of
// the Section 2.5 monitoring story. Clients (e.g. mdtop -connect)
// subscribe to per-item version streams and receive snapshot-then-delta
// catch-up followed by coalesced live updates.
//
// Usage:
//
//	mdserve                      # serve on localhost:7171 until interrupted
//	mdserve -addr :8080          # serve elsewhere
//	mdserve -seconds 10          # serve for 10 seconds, then exit
//
// Endpoints: /watch?registry=N&kind=K[&since=V], /items, /stats.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
	"repro/internal/watch"
)

func main() {
	addr := flag.String("addr", "localhost:7171", "listen address")
	seconds := flag.Int("seconds", 0, "serve for this many seconds, then exit (0 = until interrupted)")
	flag.Parse()

	d, err := startDemo(*addr, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer d.Close()

	if *seconds > 0 {
		time.Sleep(time.Duration(*seconds) * time.Second)
		return
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
}

// demo is a running mdserve instance: a wall-clock pipeline, a watch
// hub over its registries, and an HTTP server.
type demo struct {
	// URL is the server's base URL with the actually bound address.
	URL string

	hs      *http.Server
	hub     *watch.Hub
	rc      *clock.Real
	release []func()
}

// startDemo builds the pipeline (src -> even filter -> sink, arrivals
// every 10 ms, periodic stats once per second) and starts serving its
// metadata on addr. The demo items are pinned by server-side
// subscriptions so their version streams survive client churn.
func startDemo(addr string, out io.Writer) (*demo, error) {
	rc := clock.NewReal()
	env := core.NewEnv(rc)
	g := graph.New(env)

	schema := stream.Schema{Name: "ticks", Fields: []stream.Field{{Name: "v", Type: "int"}}}
	src := ops.NewSource(g, "src", schema, 0, 1000)
	f := ops.NewFilter(g, "even", schema, func(tp stream.Tuple) bool { return tp[0].(int)%2 == 0 }, 1000)
	sink := ops.NewSink(g, "sink", schema, nil, 0, 0, 1000)
	g.Connect(src, f)
	g.Connect(f, sink)

	d := &demo{rc: rc}
	for _, pin := range []struct {
		reg  *core.Registry
		kind core.Kind
	}{
		{src.Registry(), ops.KindOutputRate},
		{f.Registry(), ops.KindInputRate},
		{f.Registry(), ops.KindSelectivity},
		{f.Registry(), ops.KindAvgInputRate},
	} {
		sub, err := pin.reg.Subscribe(pin.kind)
		if err != nil {
			d.Close()
			return nil, err
		}
		d.release = append(d.release, sub.Unsubscribe)
	}

	// Arrivals every 10 ms, delivered straight through the operators.
	i := 0
	var arrive func(now clock.Time)
	arrive = func(now clock.Time) {
		el := src.Emit(stream.NewElement(stream.Tuple{i}, now))
		for _, o := range f.Process(el, 0) {
			sink.Process(o, 0)
		}
		i++
		rc.After(10, arrive)
	}
	rc.After(10, arrive)

	d.hub = watch.NewHub(env)
	srv := watch.NewServer(d.hub, env, src.Registry(), f.Registry(), sink.Registry())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		d.Close()
		return nil, err
	}
	d.URL = "http://" + ln.Addr().String()
	fmt.Fprintf(out, "mdserve: listening on %s (watch: /watch?registry=%s&kind=%s)\n",
		d.URL, f.Registry().ID(), ops.KindInputRate)
	d.hs = &http.Server{Handler: srv.Handler()}
	go d.hs.Serve(ln)
	return d, nil
}

// Close stops the HTTP server (dropping open SSE streams), the hub,
// and the demo clock, and releases the pinned subscriptions.
func (d *demo) Close() {
	if d.hs != nil {
		d.hs.Close()
	}
	if d.hub != nil {
		d.hub.Close()
	}
	for _, rel := range d.release {
		rel()
	}
	d.rc.Stop()
}
