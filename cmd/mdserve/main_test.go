package main

import (
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/watch"
)

// TestServeSmoke boots the demo on an ephemeral port and walks the
// HTTP surface with the SSE client: snapshot frame, item inventory,
// and hub stats.
func TestServeSmoke(t *testing.T) {
	d, err := startDemo("127.0.0.1:0", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	c := watch.NewClient(d.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Registry keys carry node ids ("even#1"); discover them first.
	items, err := c.Items(ctx)
	if err != nil {
		t.Fatal(err)
	}
	keyOf := func(name string) string {
		for k := range items {
			if strings.HasPrefix(k, name+"#") {
				return k
			}
		}
		t.Fatalf("items = %v, no registry named %q", items, name)
		return ""
	}
	even := keyOf("even")
	keyOf("src")
	keyOf("sink")

	st, err := c.Watch(ctx, even, "inputRate", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	f, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !f.Snapshot || f.Registry != even || f.Kind != "inputRate" || f.Version == 0 {
		t.Fatalf("first frame = %+v, want %s/inputRate snapshot", f, even)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats["Watchers"] != 1 {
		t.Fatalf("stats Watchers = %d, want 1", stats["Watchers"])
	}
}
