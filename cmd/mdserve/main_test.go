package main

import (
	"context"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/watch"
)

// TestServeSmoke boots the demo on an ephemeral port and walks the
// HTTP surface with the SSE client: snapshot frame, item inventory,
// and hub stats.
func TestServeSmoke(t *testing.T) {
	d, err := startDemo("127.0.0.1:0", "", io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	c := watch.NewClient(d.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Registry keys carry node ids ("even#1"); discover them first.
	items, err := c.Items(ctx)
	if err != nil {
		t.Fatal(err)
	}
	keyOf := func(name string) string {
		for k := range items {
			if strings.HasPrefix(k, name+"#") {
				return k
			}
		}
		t.Fatalf("items = %v, no registry named %q", items, name)
		return ""
	}
	even := keyOf("even")
	keyOf("src")
	keyOf("sink")

	st, err := c.Watch(ctx, even, "inputRate", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	f, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !f.Snapshot || f.Registry != even || f.Kind != "inputRate" || f.Version == 0 {
		t.Fatalf("first frame = %+v, want %s/inputRate snapshot", f, even)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats["Watchers"] != 1 {
		t.Fatalf("stats Watchers = %d, want 1", stats["Watchers"])
	}
}

// TestServeDurableRestartResume runs a durable demo through a graceful
// restart and then a crash: since-based SSE catch-up must work across
// the restart (the restored item republishes above the version a
// pre-restart watcher saw), and the crash recovery must re-pin the
// demo subscriptions from the WAL alone.
func TestServeDurableRestartResume(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// ---- Life 1: fresh durable instance; note a watched version. ----
	d1, err := startDemo("127.0.0.1:0", dir, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	c1 := watch.NewClient(d1.URL)
	items, err := c1.Items(ctx)
	if err != nil {
		d1.Close()
		t.Fatal(err)
	}
	var even string
	for k := range items {
		if strings.HasPrefix(k, "even#") {
			even = k
		}
	}
	if even == "" {
		d1.Close()
		t.Fatalf("items = %v, no even registry", items)
	}
	st, err := c1.Watch(ctx, even, "inputRate", 0)
	if err != nil {
		d1.Close()
		t.Fatal(err)
	}
	f, err := st.Next()
	if err != nil {
		d1.Close()
		t.Fatal(err)
	}
	seen := f.Version
	st.Close()
	d1.Shutdown(io.Discard) // graceful: drains SSE, writes final checkpoint

	// ---- Life 2: recover; a since=seen watcher resumes. ----
	d2, err := startDemo("127.0.0.1:0", dir, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.release) != 0 {
		d2.Close()
		t.Fatalf("restart made %d fresh pins, want recovery to re-pin", len(d2.release))
	}
	c2 := watch.NewClient(d2.URL)
	stats, err := c2.Stats(ctx)
	if err != nil {
		d2.Close()
		t.Fatal(err)
	}
	if stats["Recoveries"] != 1 || stats["RestoredStale"] < 1 {
		d2.Close()
		t.Fatalf("stats = Recoveries %d RestoredStale %d, want 1 and >= 1",
			stats["Recoveries"], stats["RestoredStale"])
	}
	st2, err := c2.Watch(ctx, even, "inputRate", seen)
	if err != nil {
		d2.Close()
		t.Fatal(err)
	}
	f2, err := st2.Next()
	if err != nil {
		d2.Close()
		t.Fatal(err)
	}
	if f2.Version <= seen {
		d2.Close()
		t.Fatalf("resumed frame = %+v, want version above pre-restart %d", f2, seen)
	}
	st2.Close()

	// ---- Life 3: crash life 2 (no final checkpoint), recover again. ----
	d2.Close() // Abandon: WAL and the open-time checkpoint survive
	d3, err := startDemo("127.0.0.1:0", dir, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Shutdown(io.Discard)
	if len(d3.release) != 0 {
		t.Fatal("crash restart made fresh pins, want recovery to re-pin")
	}
	c3 := watch.NewClient(d3.URL)
	items3, err := c3.Items(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(items3) != len(items) {
		t.Fatalf("post-crash inventory %v, want same registries as %v", items3, items)
	}
	// The demo pins survived the crash: the item is live and watchable
	// with a non-zero version stream.
	st3, err := c3.Watch(ctx, even, "inputRate", 0)
	if err != nil {
		t.Fatal(err)
	}
	f3, err := st3.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !f3.Snapshot || f3.Version == 0 {
		t.Fatalf("post-crash frame = %+v, want pinned snapshot", f3)
	}
	st3.Close()
}
