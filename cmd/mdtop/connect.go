package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/pipes"
)

// runConnect attaches mdtop to a running mdserve (or mdserve -relay)
// and prints a fixed number of watch frames followed by the server's
// hub counters. The default transport is one mux session carrying
// every watched item over a single connection, reconnecting with
// resume if the server bounces; legacy switches to the per-item SSE
// stream (one connection per item — the ablation E25 measures
// against). item is "registry/kind"; when empty, mux mode watches
// every advertised item and legacy mode the first one.
func runConnect(base, item string, frames int, since uint64, legacy bool, out io.Writer) error {
	c := pipes.NewWatchClient(base)
	ctx := context.Background()

	if legacy {
		return runConnectLegacy(ctx, c, base, item, frames, since, out)
	}

	// Build the watch list: the one named item, or everything the
	// server advertises.
	type watchName struct{ reg, kind string }
	var names []watchName
	if reg, kind, ok := strings.Cut(item, "/"); ok && reg != "" && kind != "" {
		names = append(names, watchName{reg, kind})
	} else {
		items, err := c.Items(ctx)
		if err != nil {
			return err
		}
		regs := make([]string, 0, len(items))
		for reg := range items {
			regs = append(regs, reg)
		}
		sort.Strings(regs)
		for _, reg := range regs {
			kinds := append([]string(nil), items[reg]...)
			sort.Strings(kinds)
			for _, kind := range kinds {
				names = append(names, watchName{reg, kind})
			}
		}
		if len(names) == 0 {
			return fmt.Errorf("mdtop: server advertises no watchable items")
		}
	}

	attaches := 0
	m := c.MuxReconnect(ctx, pipes.WatchReconnectOptions{})
	m.OnResume = func(watches int) {
		attaches++
		if attaches == 1 {
			fmt.Fprintf(out, "mdtop: mux session attached (%d watches over 1 connection)\n", watches)
			return
		}
		fmt.Fprintf(out, "mdtop: mux session resumed (%d watches, one snapshot each)\n", watches)
	}
	byID := make(map[uint64]watchName, len(names))
	for i, n := range names {
		id := uint64(i + 1)
		byID[id] = n
		if err := m.Add(id, pipes.MuxWatch{Registry: n.reg, Kind: n.kind, Since: since}); err != nil {
			return err
		}
	}
	defer m.Close()

	fmt.Fprintf(out, "watching %d item(s) on %s via mux (S=snapshot C=coalesced)\n", len(names), base)
	fmt.Fprintf(out, "%-2s %-24s %8s %12s\n", "", "item", "version", "value")
	for i := 0; i < frames; i++ {
		ev, err := m.Next()
		if err != nil {
			return err
		}
		n := byID[ev.ID]
		tag := ""
		switch {
		case ev.Snapshot:
			tag = "S"
		case ev.Coalesced:
			tag = "C"
		}
		val := ev.Raw
		if ev.Numeric {
			val = fmt.Sprintf("%.4f", ev.Value)
		}
		if ev.Err != "" {
			val = "error: " + ev.Err
		}
		fmt.Fprintf(out, "%-2s %-24s %8d %12s\n", tag, n.reg+"/"+n.kind, ev.Version, val)
	}
	if sess := m.Session(); sess != nil && sess.Frames() > 0 {
		fmt.Fprintf(out, "mux client: frames=%d events=%d eventsPerFrame=%.1f\n",
			sess.Frames(), sess.Events(), float64(sess.Events())/float64(sess.Frames()))
	}
	return printServerStats(ctx, c, out)
}

// runConnectLegacy is the pre-mux path: one SSE connection for one
// item.
func runConnectLegacy(ctx context.Context, c *pipes.WatchClient, base, item string, frames int, since uint64, out io.Writer) error {
	reg, kind, ok := strings.Cut(item, "/")
	if !ok || reg == "" || kind == "" {
		var err error
		reg, kind, err = firstItem(ctx, c)
		if err != nil {
			return err
		}
	}

	st, err := c.Watch(ctx, reg, kind, since)
	if err != nil {
		return err
	}
	defer st.Close()

	fmt.Fprintf(out, "watching %s/%s on %s (S=snapshot C=coalesced)\n", reg, kind, base)
	fmt.Fprintf(out, "%-2s %8s %12s\n", "", "version", "value")
	for i := 0; i < frames; i++ {
		f, err := st.Next()
		if err != nil {
			return err
		}
		tag := ""
		switch {
		case f.Snapshot:
			tag = "S"
		case f.Coalesced:
			tag = "C"
		}
		val := f.Raw
		if f.Numeric {
			val = fmt.Sprintf("%.4f", f.Value)
		}
		if f.Err != "" {
			val = "error: " + f.Err
		}
		fmt.Fprintf(out, "%-2s %8d %12s\n", tag, f.Version, val)
	}
	return printServerStats(ctx, c, out)
}

// printServerStats prints the server-side hub, mux, relay, and
// durability counters.
func printServerStats(ctx context.Context, c *pipes.WatchClient, out io.Writer) error {
	stats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "watch hub: watchers=%d wakeups=%d coalescedWakeups=%d shedNotifies=%d catchUps=%d\n",
		stats["Watchers"], stats["Wakeups"], stats["CoalescedWakeups"],
		stats["ShedNotifies"], stats["CatchUps"])
	if stats["MuxFrames"]+stats["MuxSessions"]+stats["MuxHeartbeats"] > 0 {
		epf := 0.0
		if stats["MuxFrames"] > 0 {
			epf = float64(stats["MuxEvents"]) / float64(stats["MuxFrames"])
		}
		fmt.Fprintf(out, "mux: sessions=%d frames=%d events=%d heartbeats=%d eventsPerFrame=%.1f\n",
			stats["MuxSessions"], stats["MuxFrames"], stats["MuxEvents"],
			stats["MuxHeartbeats"], epf)
	}
	if stats["RelayEvents"]+stats["RelayResumes"] > 0 {
		fmt.Fprintf(out, "relay: events=%d resumes=%d\n", stats["RelayEvents"], stats["RelayResumes"])
	}
	if stats["WALRecords"]+stats["Checkpoints"]+stats["Recoveries"] > 0 {
		fmt.Fprintf(out, "durability: walRecords=%d walBytes=%d checkpoints=%d checkpointAt=%d recoveries=%d restoredStale=%d\n",
			stats["WALRecords"], stats["WALBytes"], stats["Checkpoints"],
			stats["CheckpointAt"], stats["Recoveries"], stats["RestoredStale"])
	}
	return nil
}

// firstItem picks the lexicographically first registry/kind pair the
// server advertises.
func firstItem(ctx context.Context, c *pipes.WatchClient) (string, string, error) {
	items, err := c.Items(ctx)
	if err != nil {
		return "", "", err
	}
	regs := make([]string, 0, len(items))
	for reg, kinds := range items {
		if len(kinds) > 0 {
			regs = append(regs, reg)
		}
	}
	if len(regs) == 0 {
		return "", "", fmt.Errorf("mdtop: server advertises no watchable items")
	}
	sort.Strings(regs)
	kinds := items[regs[0]]
	sort.Strings(kinds)
	return regs[0], kinds[0], nil
}
