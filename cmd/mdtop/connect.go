package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/pipes"
)

// runConnect attaches mdtop to a running mdserve over HTTP/SSE and
// prints a fixed number of watch frames followed by the server's hub
// counters. item is "registry/kind"; when empty, the first item the
// server advertises is watched.
func runConnect(base, item string, frames int, since uint64, out io.Writer) error {
	c := pipes.NewWatchClient(base)
	ctx := context.Background()

	reg, kind, ok := strings.Cut(item, "/")
	if !ok || reg == "" || kind == "" {
		var err error
		reg, kind, err = firstItem(ctx, c)
		if err != nil {
			return err
		}
	}

	st, err := c.Watch(ctx, reg, kind, since)
	if err != nil {
		return err
	}
	defer st.Close()

	fmt.Fprintf(out, "watching %s/%s on %s (S=snapshot C=coalesced)\n", reg, kind, base)
	fmt.Fprintf(out, "%-2s %8s %12s\n", "", "version", "value")
	for i := 0; i < frames; i++ {
		f, err := st.Next()
		if err != nil {
			return err
		}
		tag := ""
		switch {
		case f.Snapshot:
			tag = "S"
		case f.Coalesced:
			tag = "C"
		}
		val := f.Raw
		if f.Numeric {
			val = fmt.Sprintf("%.4f", f.Value)
		}
		if f.Err != "" {
			val = "error: " + f.Err
		}
		fmt.Fprintf(out, "%-2s %8d %12s\n", tag, f.Version, val)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "watch hub: watchers=%d wakeups=%d coalescedWakeups=%d shedNotifies=%d catchUps=%d\n",
		stats["Watchers"], stats["Wakeups"], stats["CoalescedWakeups"],
		stats["ShedNotifies"], stats["CatchUps"])
	if stats["WALRecords"]+stats["Checkpoints"]+stats["Recoveries"] > 0 {
		fmt.Fprintf(out, "durability: walRecords=%d walBytes=%d checkpoints=%d checkpointAt=%d recoveries=%d restoredStale=%d\n",
			stats["WALRecords"], stats["WALBytes"], stats["Checkpoints"],
			stats["CheckpointAt"], stats["Recoveries"], stats["RestoredStale"])
	}
	return nil
}

// firstItem picks the lexicographically first registry/kind pair the
// server advertises.
func firstItem(ctx context.Context, c *pipes.WatchClient) (string, string, error) {
	items, err := c.Items(ctx)
	if err != nil {
		return "", "", err
	}
	regs := make([]string, 0, len(items))
	for reg, kinds := range items {
		if len(kinds) > 0 {
			regs = append(regs, reg)
		}
	}
	if len(regs) == 0 {
		return "", "", fmt.Errorf("mdtop: server advertises no watchable items")
	}
	sort.Strings(regs)
	kinds := items[regs[0]]
	sort.Strings(kinds)
	return regs[0], kinds[0], nil
}
