package main

import (
	"strings"
	"testing"

	"repro/internal/smoketest"
)

func TestSmoke(t *testing.T) {
	out := smoketest.Run(t, []string{"mdtop", "-until", "200"}, main)
	for _, want := range []string{"metadata inventory", "recorded series", "framework activity", "degraded ops"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
