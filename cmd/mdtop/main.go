// Command mdtop runs a demo query graph and periodically prints its
// metadata — a terminal variant of the monitoring tool of Section 2.5.
// It shows the per-node metadata inventory (available vs included
// items) and the recorded time series of the items a consumer
// subscribed to.
//
// Usage:
//
//	mdtop                                  # run the demo for 5000 time units
//	mdtop -until 20000                     # run longer
//	mdtop -csv                             # dump the recorded series as CSV
//	mdtop -connect http://localhost:7171   # watch a running mdserve: every
//	                                       # advertised item over ONE mux session
//	mdtop -connect URL -legacy             # per-item SSE ablation (one conn/item)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/pipes"
)

func main() {
	until := flag.Int64("until", 5000, "simulated time units to run")
	csv := flag.Bool("csv", false, "emit recorded series as CSV")
	dot := flag.Bool("dot", false, "emit the live metadata dependency graph as Graphviz DOT")
	wall := flag.Int("wall", 0, "run on the wall clock for this many seconds instead of the simulation")
	jsonOut := flag.Bool("json", false, "emit a JSON snapshot of all included metadata")
	connect := flag.String("connect", "", "attach to a running mdserve at this base URL instead of simulating")
	item := flag.String("item", "", "with -connect: item to watch as registry/kind (default: all advertised; first with -legacy)")
	frames := flag.Int("frames", 5, "with -connect: number of watch frames to print")
	since := flag.Uint64("since", 0, "with -connect: resume the watch after this version")
	legacy := flag.Bool("legacy", false, "with -connect: use the per-item SSE stream instead of one mux session")
	flag.Parse()

	if *connect != "" {
		must(runConnect(*connect, *item, *frames, *since, *legacy, os.Stdout))
		return
	}
	if *wall > 0 {
		runWall(*wall)
		return
	}

	schema := pipes.Schema{Name: "reading", Fields: []pipes.Field{
		{Name: "sensor", Type: "int"},
		{Name: "value", Type: "int"},
	}}

	sys := pipes.NewSystem(pipes.WithStatWindow(100))
	mk := func(i int) pipes.Tuple { return pipes.Tuple{i % 8, i % 50} }
	gen := pipes.NewPoisson(0, 0.2, 0, 42)
	gen.MakeTup = mk

	src := sys.Source("sensors", schema, gen, 0.2)
	hot := src.Filter("hot", func(t pipes.Tuple) bool { return t[1].(int) >= 25 })
	w := hot.Window("w", 500)
	counts := w.GroupAggregate("bySensor", 0, pipes.NewCount())
	counts.Sink("app", nil)

	rec := sys.NewRecorder(250)
	defer rec.Close()
	must(rec.Track("src.outputRate", src.Metadata(), pipes.KindOutputRate))
	must(rec.Track("hot.selectivity", hot.Metadata(), pipes.KindSelectivity))
	must(rec.Track("hot.avgInputRate", hot.Metadata(), pipes.KindAvgInputRate))
	must(rec.Track("agg.stateSize", counts.Metadata(), pipes.KindStateSize))

	sys.Run(pipes.Time(*until))

	if *dot {
		fmt.Print(sys.DependencyDOT())
		return
	}
	if *jsonOut {
		raw, err := sys.SnapshotJSON()
		must(err)
		fmt.Println(string(raw))
		return
	}
	if *csv {
		if err := rec.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("metadata inventory at t=%d (included = has a handler):\n\n", sys.Now())
	fmt.Println(sys.Inventory())
	fmt.Println("recorded series (mean / last / max):")
	for _, name := range rec.Names() {
		s := rec.Series(name)
		fmt.Printf("  %-18s mean=%-10.4g last=%-10.4g max=%-10.4g samples=%d\n",
			name, s.Mean(), s.Last().Value, s.Max(), len(s.Samples))
	}
	st := sys.Env().Stats().Snapshot()
	fmt.Printf("\nframework activity: %+v\n", st)
	fmt.Printf("update pipeline: scopeBatches=%d batchedTicks=%d meanBatch=%.1f planHitRate=%.3f\n",
		st.ScopeBatches, st.BatchedTicks, st.MeanBatchSize(), st.PlanHitRate())
	fmt.Printf("degraded ops: timeouts=%d lateResults=%d trips=%d recoveries=%d shedTicks=%d queueHighWater=%d\n",
		st.Timeouts, st.LateResults, st.BreakerTrips, st.BreakerRecoveries,
		st.ShedTicks, st.QueueHighWater)
	fmt.Printf("read path: memoHits=%d memoMisses=%d memoHitRate=%.3f coalescedReads=%d\n",
		st.MemoHits, st.MemoMisses, st.MemoHitRate(), st.CoalescedReads)
	fmt.Printf("delta path: deltaFires=%d deltaFallbacks=%d deltaRebases=%d deltaHitRate=%.3f\n",
		st.DeltaFires, st.DeltaFallbacks, st.DeltaRebases, st.DeltaHitRate())
	fmt.Printf("adaptive: migrations=%d handlersCreated=%d handlersRemoved=%d\n",
		st.Migrations, st.HandlersCreated, st.HandlersRemoved)
	fmt.Printf("watch hub: watchers=%d wakeups=%d coalescedWakeups=%d shedNotifies=%d catchUps=%d\n",
		st.Watchers, st.Wakeups, st.CoalescedWakeups, st.ShedNotifies, st.CatchUps)
	if st.WALRecords+st.Checkpoints+st.Recoveries > 0 {
		age := int64(-1)
		if st.CheckpointAt > 0 {
			age = int64(sys.Now()) - st.CheckpointAt
		}
		fmt.Printf("durability: walRecords=%d walBytes=%d checkpoints=%d checkpointAge=%d recoveries=%d restoredStale=%d\n",
			st.WALRecords, st.WALBytes, st.Checkpoints, age, st.Recoveries, st.RestoredStale)
	}
}

func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
