package main

import (
	"fmt"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/stream"
)

// runWall drives a small pipeline on the wall clock for the given
// number of seconds, printing live metadata once per second. One
// abstract time unit is one millisecond, so a stat window of 1000
// updates the periodic items once per second.
func runWall(seconds int) {
	rc := clock.NewReal()
	defer rc.Stop()
	env := core.NewEnv(rc)
	g := graph.New(env)

	schema := stream.Schema{Name: "ticks", Fields: []stream.Field{{Name: "v", Type: "int"}}}
	src := ops.NewSource(g, "src", schema, 0, 1000)
	f := ops.NewFilter(g, "even", schema, func(tp stream.Tuple) bool { return tp[0].(int)%2 == 0 }, 1000)
	sink := ops.NewSink(g, "sink", schema, nil, 0, 0, 1000)
	g.Connect(src, f)
	g.Connect(f, sink)

	rate, err := f.Registry().Subscribe(ops.KindInputRate)
	must(err)
	defer rate.Unsubscribe()
	sel, err := f.Registry().Subscribe(ops.KindSelectivity)
	must(err)
	defer sel.Unsubscribe()
	avg, err := f.Registry().Subscribe(ops.KindAvgInputRate)
	must(err)
	defer avg.Unsubscribe()

	// Arrivals every 10 ms (rate 0.1 per ms), delivered straight
	// through the two operators.
	i := 0
	var arrive func(now clock.Time)
	arrive = func(now clock.Time) {
		el := src.Emit(stream.NewElement(stream.Tuple{i}, now))
		for _, out := range f.Process(el, 0) {
			sink.Process(out, 0)
		}
		i++
		rc.After(10, arrive)
	}
	rc.After(10, arrive)

	fmt.Printf("wall-clock mode: %d seconds, arrivals every 10ms (true rate 0.1/ms)\n", seconds)
	fmt.Printf("%8s %12s %12s %12s\n", "t(ms)", "inputRate", "selectivity", "avgRate")
	for s := 0; s < seconds; s++ {
		time.Sleep(time.Second)
		rv, _ := rate.Float()
		sv, _ := sel.Float()
		av, _ := avg.Float()
		fmt.Printf("%8d %12.4f %12.3f %12.4f\n", rc.Now(), rv, sv, av)
	}
}
