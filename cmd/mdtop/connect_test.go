package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/watch"
)

// syncBuf makes the output buffer safe for the mux reconnector's
// OnResume callback, which writes from its own goroutine.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// connectServer starts an in-process watch server over one triggered
// item ("n1/val") plus its static source, with steady publications so
// delta frames keep arriving. Cleanup is registered on t.
func connectServer(t *testing.T) *httptest.Server {
	t.Helper()
	env := core.NewEnv(clock.NewVirtual())
	r := env.NewRegistry("n1")
	r.MustDefine(&core.Definition{
		Kind:  "src",
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(0.0), nil },
	})
	n := new(atomic.Int64)
	r.MustDefine(&core.Definition{
		Kind: "val",
		Deps: []core.DepRef{core.Dep(core.Self(), "src")},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return float64(n.Load()), nil
			}), nil
		},
	})

	h := watch.NewHub(env)
	t.Cleanup(h.Close)
	srv := httptest.NewServer(watch.NewServer(h, env, r).Handler())
	t.Cleanup(srv.Close)

	done := make(chan struct{})
	t.Cleanup(func() { close(done) })
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			n.Add(1)
			r.NotifyChanged("src")
			time.Sleep(2 * time.Millisecond)
		}
	}()
	return srv
}

// TestConnectEndToEnd points runConnect's default mux transport at an
// in-process watch server and checks the printed frames and stat
// lines.
func TestConnectEndToEnd(t *testing.T) {
	srv := connectServer(t)

	var buf syncBuf
	if err := runConnect(srv.URL, "n1/val", 3, 0, false, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"watching 1 item(s)",
		"via mux",
		"mdtop: mux session attached (1 watches over 1 connection)",
		"S ", // snapshot-tagged first frame
		"n1/val",
		"watch hub: watchers=",
		"catchUps=",
		"mux: sessions=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 7 {
		t.Fatalf("output has %d lines, want >= 7 (banner + header + 3 frames + stats):\n%s", lines, out)
	}

	// Item discovery: empty -item watches every advertised pair over
	// the one session.
	buf = syncBuf{}
	if err := runConnect(srv.URL, "", 1, 0, false, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "watching 2 item(s)") {
		t.Fatalf("discovery output = %q, want watching 2 item(s)", buf.String())
	}
}

// TestConnectLegacySSE covers the -legacy per-item SSE ablation path.
func TestConnectLegacySSE(t *testing.T) {
	srv := connectServer(t)

	var buf syncBuf
	if err := runConnect(srv.URL, "n1/val", 3, 0, true, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"watching n1/val",
		"S ",
		"watch hub: watchers=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("legacy output missing %q:\n%s", want, out)
		}
	}

	// Legacy discovery picks the first advertised pair.
	buf = syncBuf{}
	if err := runConnect(srv.URL, "", 1, 0, true, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "watching n1/") {
		t.Fatalf("legacy discovery output = %q, want watching n1/...", buf.String())
	}
}
