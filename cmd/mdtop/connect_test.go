package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/watch"
)

// TestConnectEndToEnd points runConnect at an in-process watch server
// and checks the printed frames and hub stat line.
func TestConnectEndToEnd(t *testing.T) {
	env := core.NewEnv(clock.NewVirtual())
	r := env.NewRegistry("n1")
	r.MustDefine(&core.Definition{
		Kind:  "src",
		Build: func(*core.BuildContext) (core.Handler, error) { return core.NewStatic(0.0), nil },
	})
	n := new(atomic.Int64)
	r.MustDefine(&core.Definition{
		Kind: "val",
		Deps: []core.DepRef{core.Dep(core.Self(), "src")},
		Build: func(*core.BuildContext) (core.Handler, error) {
			return core.NewTriggered(func(clock.Time) (core.Value, error) {
				return float64(n.Load()), nil
			}), nil
		},
	})

	h := watch.NewHub(env)
	defer h.Close()
	srv := httptest.NewServer(watch.NewServer(h, env, r).Handler())
	defer srv.Close()

	// Steady publications so runConnect's delta frames arrive.
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			n.Add(1)
			r.NotifyChanged("src")
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var buf bytes.Buffer
	if err := runConnect(srv.URL, "n1/val", 3, 0, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"watching n1/val",
		"S ", // snapshot-tagged first frame
		"watch hub: watchers=",
		"catchUps=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines < 6 {
		t.Fatalf("output has %d lines, want >= 6 (header + 3 frames + stats):\n%s", lines, out)
	}

	// Item discovery: empty -item picks the first advertised pair.
	buf.Reset()
	if err := runConnect(srv.URL, "", 1, 0, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "watching n1/") {
		t.Fatalf("discovery output = %q, want watching n1/...", buf.String())
	}
}
