package main

import (
	"strings"
	"testing"

	"repro/internal/smoketest"
)

func TestSmoke(t *testing.T) {
	out := smoketest.Run(t, []string{"qgen", "-shape", "chain", "-n", "5", "-duration", "100"}, main)
	for _, want := range []string{"shape=chain operators=5", "elements processed:", "updates per time unit:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
