// Command qgen generates parameterized query-graph workloads and
// reports the metadata framework's cost of provisioning them — a
// debugging and profiling aid for the scalability experiments.
//
// Usage:
//
//	qgen -shape chain -n 100 -subscribe 0.1
//	qgen -shape tree -n 63
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/monitor"
	"repro/internal/ops"
	"repro/internal/stream"
)

var schema = stream.Schema{Name: "ints", Fields: []stream.Field{{Name: "v", Type: "int"}}}

func main() {
	shape := flag.String("shape", "chain", "graph shape: chain | tree | shared")
	n := flag.Int("n", 50, "number of operators")
	frac := flag.Float64("subscribe", 0.1, "fraction of operators with a selectivity consumer")
	duration := flag.Int64("duration", 2000, "simulated run length")
	flag.Parse()

	vc := clock.NewVirtual()
	g := graph.New(core.NewEnv(vc))
	var sources []*ops.Source
	var operators []graph.Node

	switch *shape {
	case "chain":
		src := ops.NewSource(g, "src", schema, 1, 50)
		sources = append(sources, src)
		prev := graph.Node(src)
		for i := 0; i < *n; i++ {
			f := ops.NewFilter(g, fmt.Sprintf("f%d", i), schema, func(stream.Tuple) bool { return true }, 50)
			g.Connect(prev, f)
			operators = append(operators, f)
			prev = f
		}
		g.Connect(prev, ops.NewSink(g, "sink", schema, nil, 0, 0, 50))
	case "tree":
		// A left-deep tree of unions over n/2 sources.
		leaves := *n/2 + 1
		var prev graph.Node
		for i := 0; i < leaves; i++ {
			src := ops.NewSource(g, fmt.Sprintf("s%d", i), schema, 1, 50)
			sources = append(sources, src)
			if prev == nil {
				prev = src
				continue
			}
			u := ops.NewUnion(g, fmt.Sprintf("u%d", i), schema, 50)
			g.Connect(prev, u)
			g.Connect(src, u)
			operators = append(operators, u)
			prev = u
		}
		g.Connect(prev, ops.NewSink(g, "sink", schema, nil, 0, 0, 50))
	case "shared":
		// One shared filter chain feeding n sinks (subquery sharing).
		src := ops.NewSource(g, "src", schema, 1, 50)
		sources = append(sources, src)
		f := ops.NewFilter(g, "shared", schema, func(stream.Tuple) bool { return true }, 50)
		g.Connect(src, f)
		operators = append(operators, f)
		for i := 0; i < *n; i++ {
			g.Connect(f, ops.NewSink(g, fmt.Sprintf("q%d", i), schema, nil, 0, float64(i), 50))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown shape %q\n", *shape)
		os.Exit(2)
	}

	// Subscribe to the selectivity of every (1/frac)-th operator.
	var subs []*core.Subscription
	if *frac > 0 && len(operators) > 0 {
		step := int(1 / *frac)
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(operators); i += step {
			s, err := operators[i].Registry().Subscribe(ops.KindSelectivity)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			subs = append(subs, s)
		}
	}

	e := engine.New(g, vc)
	for i, src := range sources {
		e.Bind(src, stream.NewConstantRate(clock.Time(i), 1, 0))
	}
	prof := monitor.NewProfiler(g.Env())
	e.RunUntil(clock.Time(*duration))
	p := prof.Stop()

	fmt.Printf("shape=%s operators=%d sources=%d subscriptions=%d\n",
		*shape, len(operators), len(sources), len(subs))
	fmt.Printf("elements processed: %d\n", e.Processed())
	fmt.Printf("metadata activity over %d time units:\n", p.Duration)
	fmt.Printf("  handlers created:   %d\n", p.Window.HandlersCreated)
	fmt.Printf("  periodic updates:   %d\n", p.Window.PeriodicUpdates)
	fmt.Printf("  triggered updates:  %d\n", p.Window.TriggeredUpdates)
	fmt.Printf("  on-demand computes: %d\n", p.Window.OnDemandComputes)
	fmt.Printf("  updates per time unit: %.3f\n", p.UpdatesPerTimeUnit())
	for _, s := range subs {
		s.Unsubscribe()
	}
}
